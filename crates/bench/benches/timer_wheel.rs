//! Timer-service microbenches: the hierarchical wheel against the
//! legacy scan-everything path, both on the raw structure (schedule /
//! peek / pop) and through the engine (`next_wakeup` + `on_timer` with
//! many on-tree groups — the per-wakeup cost a busy router pays).

use cbt::timers::{TimerService, TimerWheel};
use cbt::{CbtConfig, CbtRouter};
use cbt_netsim::{SimDuration, SimTime};
use cbt_routing::Hop;
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::{AckSubcode, Addr, ControlMessage, GroupId, JoinSubcode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;

/// Deterministic but scattered deadlines (no RNG: the spread mimics
/// staggered per-group echo clocks).
fn deadline(i: u64) -> SimTime {
    SimTime::from_micros(1_000 + (i.wrapping_mul(2_654_435_761) % 30_000_000))
}

/// Filling and fully draining a wheel: the structure's raw throughput.
fn bench_wheel_fill_drain(c: &mut Criterion) {
    for n in [1_000u64, 10_000] {
        c.bench_function(&format!("timers/wheel_fill_drain_{n}"), |b| {
            b.iter(|| {
                let mut w: TimerWheel<u64> = TimerWheel::new(SimTime::ZERO);
                for i in 0..n {
                    w.schedule(deadline(i), i);
                }
                let mut popped = 0usize;
                while let Some(t) = w.peek() {
                    popped += w.pop_due(t).len();
                }
                black_box(popped)
            })
        });
    }
}

/// One service step at steady state: peek the head, pop one due entry,
/// re-arm it an interval later — what each engine wakeup does, with the
/// rest of the population staying put.
fn bench_service_steady_state(c: &mut Criterion) {
    for n in [1_000u64, 10_000] {
        c.bench_function(&format!("timers/service_step_{n}_armed"), |b| {
            let mut svc: TimerService<u64> = TimerService::new(SimTime::ZERO);
            for i in 0..n {
                svc.arm(i, deadline(i));
            }
            b.iter(|| {
                let t = svc.peek().expect("population stays constant");
                for k in svc.pop_due(t) {
                    svc.arm(k, t + SimDuration::from_secs(30));
                }
                black_box(t)
            })
        });
    }
}

/// Arm-supersede churn: every re-arm of a hot key plus the lazy-cancel
/// cleanup the generation scheme defers to `compact`.
fn bench_service_rearm_churn(c: &mut Criterion) {
    c.bench_function("timers/service_rearm_churn", |b| {
        let mut svc: TimerService<u64> = TimerService::new(SimTime::ZERO);
        for i in 0..1_000 {
            svc.arm(i, deadline(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            svc.arm(i % 1_000, deadline(i) + SimDuration::from_secs(60));
            svc.compact();
            black_box(svc.peek())
        })
    });
}

struct FixedRoutes(BTreeMap<Addr, Hop>);
impl cbt::RouteLookup for FixedRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

fn core() -> Addr {
    Addr::from_octets(10, 255, 0, 9)
}

/// A forwarding router with `groups` on-tree FIB entries (parent up,
/// child down), timers per `cfg`.
fn loaded_engine(cfg: CbtConfig, groups: usize) -> CbtRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let mut routes = BTreeMap::new();
    routes.insert(
        core(),
        Hop {
            iface: IfIndex(1),
            router: RouterId(1),
            addr: Addr::from_octets(172, 31, 0, 2),
            dist: 1,
        },
    );
    let mut e = CbtRouter::new(&net, me, cfg, Box::new(FixedRoutes(routes)), SimTime::ZERO);
    for n in 0..groups {
        let g = GroupId::numbered(n as u16);
        e.learn_cores(g, &[core()]);
        // Stagger each group's join so echo deadlines spread across the
        // echo interval instead of all landing on one tick.
        let t = SimTime::from_micros(n as u64 * 30_000_000 / groups as u64);
        e.handle_control(
            t,
            IfIndex(2),
            Addr::from_octets(172, 31, 0, 6),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g,
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core(),
                cores: vec![core()],
            },
        );
        e.handle_control(
            t,
            IfIndex(1),
            Addr::from_octets(172, 31, 0, 2),
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g,
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core(),
                cores: vec![core()],
            },
        );
    }
    // Settle past the join phase so the next wakeup is a steady-state
    // echo deadline, not boot housekeeping.
    let horizon = SimTime::from_secs(31);
    while let Some(t) = e.next_wakeup() {
        if t >= horizon {
            break;
        }
        e.on_timer(t);
    }
    e
}

/// The pair the simulator pays on every wakeup — `next_wakeup` then
/// `on_timer` at that instant — served back-to-back at steady state.
/// Expiries are pushed out to "never" so the unanswered-echo regime
/// stays a pure keepalive treadmill: every wakeup is one group's echo
/// clock, re-armed an interval later, with the other N−1 groups idle.
/// The wheel should hold near-flat across sizes; the scan pays the
/// full FIB walk every time.
fn bench_engine_wakeup(c: &mut Criterion) {
    let forever = SimDuration::from_secs(1_000_000_000);
    for groups in [100usize, 1_000] {
        for (mode, wheel) in [("wheel", true), ("scan", false)] {
            c.bench_function(&format!("timers/engine_wakeup_{mode}_{groups}_groups"), |b| {
                let cfg = CbtConfig {
                    timer_wheel: wheel,
                    echo_timeout: forever,
                    child_assert_expire: forever,
                    ..CbtConfig::default()
                };
                let mut e = loaded_engine(cfg, groups);
                b.iter(|| {
                    let t = e.next_wakeup().expect("echo clocks re-arm forever");
                    black_box(e.on_timer(t))
                })
            });
        }
    }
}

criterion_group!(
    benches,
    bench_wheel_fill_drain,
    bench_service_steady_state,
    bench_service_rearm_churn,
    bench_engine_wakeup
);
criterion_main!(benches);
