//! Helper-free crate: the benchmarks live in `benches/`. One Criterion
//! target per experiment table/figure (see DESIGN.md's index) plus
//! microbenches for the wire codec, the forwarding fast path, the
//! engine's control-plane operations and the graph substrate.
