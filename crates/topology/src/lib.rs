//! # cbt-topology — network topologies for the CBT reproduction
//!
//! Provides the three things every experiment needs before a single CBT
//! message is exchanged:
//!
//! 1. a **router-level weighted graph** ([`graph::Graph`]) with shortest-
//!    path machinery ([`shortest`]) — this is what the unicast routing
//!    substrate (`cbt-routing`) and all tree-quality metrics run on;
//! 2. **generators** ([`generate`]) for the random topologies the
//!    SIGCOMM-'93-style evaluation sweeps over (Waxman graphs in the
//!    Doar–Leslie tradition, plus regular shapes for unit tests);
//! 3. a **network description** ([`network::NetworkSpec`]) rich enough
//!    for the protocol itself: multi-access LAN segments with attached
//!    hosts (where IGMP and DR election happen), point-to-point links,
//!    and an IPv4 addressing plan — including byte-exact reconstructions
//!    of the spec's Figure 1 and Figure 5 topologies ([`figures`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod figures;
pub mod generate;
pub mod graph;
pub mod network;
pub mod shortest;

pub use csr::{CsrGraph, SpfScratch, SpfTree, INF_DIST, NO_NODE};
pub use figures::{figure1, figure5_loop, Figure1};
pub use generate::{transit_stub, waxman, TransitStubParams, WaxmanParams};
pub use graph::{EdgeWeight, Graph, NodeId};
pub use network::{
    Attachment, HostId, HostSpec, IfIndex, LanId, LanSpec, LinkId, LinkSpec, NetworkBuilder,
    NetworkSpec, RouterId, RouterSpec,
};
pub use shortest::{AllPairs, DijkstraScratch, ShortestPaths};
