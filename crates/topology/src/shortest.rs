//! Shortest-path machinery: Dijkstra single-source trees, all-pairs
//! tables, and the centrality helpers used for core placement.
//!
//! Determinism note: ties are broken by smaller predecessor node id so
//! the same graph always yields the same trees — essential for the
//! reproducibility of every experiment.

use crate::graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance type; `u64` so summed path weights cannot overflow.
pub type Dist = u64;

/// Reusable Dijkstra scratch: the binary heap's allocation survives
/// across runs, so bulk computations (all-pairs tables, per-member
/// sweeps) stop paying a heap allocation per source.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    heap: BinaryHeap<Reverse<(Dist, u32)>>,
}

impl DijkstraScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }
}

/// Single-source shortest paths from one root.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    root: NodeId,
    dist: Vec<Option<Dist>>,
    /// Predecessor towards the root, for every reached node but the root.
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from `root`.
    ///
    /// Ties between equal-length paths resolve to the smallest-id
    /// predecessor, independent of heap pop order: every node relaxes
    /// its neighbours exactly once (when popped with its final
    /// distance), so the final predecessor is the minimum over all
    /// equal-distance candidates.
    pub fn dijkstra(g: &Graph, root: NodeId) -> Self {
        Self::dijkstra_with(g, root, &mut DijkstraScratch::new())
    }

    /// [`ShortestPaths::dijkstra`] reusing a caller-owned scratch heap.
    pub fn dijkstra_with(g: &Graph, root: NodeId, scratch: &mut DijkstraScratch) -> Self {
        let n = g.node_count();
        let mut dist: Vec<Option<Dist>> = vec![None; n];
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        let heap = &mut scratch.heap;
        heap.clear();
        dist[root.idx()] = Some(0);
        heap.push(Reverse((0, root.0)));
        while let Some(Reverse((d, node))) = heap.pop() {
            let node_id = NodeId(node);
            if dist[node_id.idx()] != Some(d) {
                continue; // stale heap entry
            }
            for (next, w) in g.neighbors(node_id) {
                let nd = d + Dist::from(w);
                match dist[next.idx()] {
                    Some(old) if nd > old => {}
                    Some(old) if nd == old => {
                        if pred[next.idx()].is_some_and(|p| node < p.0) {
                            pred[next.idx()] = Some(node_id);
                        }
                    }
                    _ => {
                        dist[next.idx()] = Some(nd);
                        pred[next.idx()] = Some(node_id);
                        heap.push(Reverse((nd, next.0)));
                    }
                }
            }
        }
        ShortestPaths { root, dist, pred }
    }

    /// The tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Distance from the root to `n`, if reachable.
    pub fn dist(&self, n: NodeId) -> Option<Dist> {
        self.dist.get(n.idx()).copied().flatten()
    }

    /// Next hop *from `n` toward the root* (its shortest-path
    /// predecessor). `None` for the root itself or unreachable nodes.
    pub fn toward_root(&self, n: NodeId) -> Option<NodeId> {
        self.pred.get(n.idx()).copied().flatten()
    }

    /// Full path from `n` to the root, inclusive of both endpoints.
    pub fn path_to_root(&self, n: NodeId) -> Option<Vec<NodeId>> {
        self.dist(n)?;
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.toward_root(cur) {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        Some(path)
    }

    /// The union of shortest paths from all `members` to the root — a
    /// shortest-path tree (the per-source tree of the baselines, and the
    /// "joins follow unicast routing" shape of a CBT tree).
    ///
    /// Returned as a subgraph of `g` (same node ids, only tree edges).
    pub fn tree_spanning(&self, g: &Graph, members: &[NodeId]) -> Graph {
        let mut tree = Graph::with_nodes(g.node_count());
        for &m in members {
            let Some(path) = self.path_to_root(m) else { continue };
            for hop in path.windows(2) {
                let w = g.edge_weight(hop[0], hop[1]).expect("path edge exists");
                tree.add_edge(hop[0], hop[1], w);
            }
        }
        tree
    }
}

/// All-pairs shortest-path distances, with per-root trees on demand.
#[derive(Debug, Clone)]
pub struct AllPairs {
    trees: Vec<ShortestPaths>,
}

impl AllPairs {
    /// Runs Dijkstra from every node.
    pub fn compute(g: &Graph) -> Self {
        let mut scratch = DijkstraScratch::new();
        AllPairs {
            trees: g.nodes().map(|r| ShortestPaths::dijkstra_with(g, r, &mut scratch)).collect(),
        }
    }

    /// Distance between two nodes, if connected.
    pub fn dist(&self, a: NodeId, b: NodeId) -> Option<Dist> {
        self.trees.get(a.idx())?.dist(b)
    }

    /// The single-source structure rooted at `root`.
    pub fn from_root(&self, root: NodeId) -> &ShortestPaths {
        &self.trees[root.idx()]
    }

    /// Eccentricity of `n`: its largest distance to any node.
    pub fn eccentricity(&self, n: NodeId) -> Option<Dist> {
        let t = &self.trees[n.idx()];
        (0..self.trees.len())
            .map(|i| t.dist(NodeId(i as u32)))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Graph center: the node with minimum eccentricity (smallest id on
    /// ties). `None` if the graph is disconnected or empty.
    pub fn center(&self) -> Option<NodeId> {
        (0..self.trees.len() as u32)
            .map(NodeId)
            .map(|n| Some((self.eccentricity(n)?, n.0)))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .min()
            .map(|(_, n)| NodeId(n))
    }

    /// Medoid of a member set: the node minimising the *sum* of
    /// distances to all members (smallest id on ties). Used by the
    /// group-centric core-placement ablation (Abl-1).
    pub fn medoid(&self, members: &[NodeId]) -> Option<NodeId> {
        if members.is_empty() {
            return None;
        }
        (0..self.trees.len() as u32)
            .map(NodeId)
            .map(|n| {
                let sum: Option<Dist> =
                    members.iter().map(|&m| self.dist(n, m)).try_fold(0, |acc, d| Some(acc + d?));
                Some((sum?, n.0))
            })
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .min()
            .map(|(_, n)| NodeId(n))
    }

    /// Graph diameter, if connected.
    pub fn diameter(&self) -> Option<Dist> {
        (0..self.trees.len() as u32)
            .map(|n| self.eccentricity(NodeId(n)))
            .try_fold(0, |acc, e| Some(acc.max(e?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 —1— 1 —1— 2 —1— 3 and a heavy chord 0 —5— 3.
    fn path_with_chord() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        g.add_edge(NodeId(0), NodeId(3), 5);
        g
    }

    #[test]
    fn dijkstra_distances() {
        let g = path_with_chord();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(NodeId(0)), Some(0));
        assert_eq!(sp.dist(NodeId(1)), Some(1));
        assert_eq!(sp.dist(NodeId(2)), Some(2));
        assert_eq!(sp.dist(NodeId(3)), Some(3), "path beats the weight-5 chord");
    }

    #[test]
    fn dijkstra_path_reconstruction() {
        let g = path_with_chord();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        assert_eq!(
            sp.path_to_root(NodeId(3)).unwrap(),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(sp.path_to_root(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn unreachable_nodes_report_none() {
        let mut g = path_with_chord();
        let iso = g.add_node();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(iso), None);
        assert_eq!(sp.path_to_root(iso), None);
    }

    #[test]
    fn tie_break_is_smallest_predecessor() {
        // 0 connects to 3 via 1 and via 2, both cost 2.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        assert_eq!(sp.toward_root(NodeId(3)), Some(NodeId(1)), "deterministic tie-break");
    }

    #[test]
    fn spanning_tree_is_a_tree_touching_members() {
        let g = path_with_chord();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        let tree = sp.tree_spanning(&g, &[NodeId(2), NodeId(3)]);
        assert!(tree.is_forest());
        assert_eq!(tree.edge_count(), 3);
        assert_eq!(tree.total_weight(), 3);
    }

    #[test]
    fn all_pairs_symmetry() {
        let g = path_with_chord();
        let ap = AllPairs::compute(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ap.dist(a, b), ap.dist(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn center_of_a_path_is_middle() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1);
        }
        let ap = AllPairs::compute(&g);
        assert_eq!(ap.center(), Some(NodeId(2)));
        assert_eq!(ap.diameter(), Some(4));
        assert_eq!(ap.eccentricity(NodeId(2)), Some(2));
    }

    #[test]
    fn medoid_tracks_the_member_set() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1);
        }
        let ap = AllPairs::compute(&g);
        assert_eq!(ap.medoid(&[NodeId(3), NodeId(4)]), Some(NodeId(3)));
        // {0,4}: every node on the path sums to 4, so the smallest id wins.
        assert_eq!(ap.medoid(&[NodeId(0), NodeId(4)]), Some(NodeId(0)));
        assert_eq!(ap.medoid(&[]), None);
    }

    #[test]
    fn disconnected_graph_has_no_center_or_diameter() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        let ap = AllPairs::compute(&g);
        assert_eq!(ap.center(), None);
        assert_eq!(ap.diameter(), None);
    }
}
