//! Byte-exact reconstructions of the spec's example topologies.
//!
//! ## Figure 1 (the running example network)
//!
//! The draft's ASCII figure is partially elided in the surviving text,
//! but every protocol walkthrough (§2.5, §2.6, §2.7, §5) names the
//! adjacencies it relies on; this module reconstructs a topology
//! satisfying **all** of those statements:
//!
//! * host A on S1, whose only CBT router is R1; host C on S3 behind R1;
//! * host B on S4, which has **three** attached routers — R6 (the
//!   elected IGMP querier / D-DR), R2 and R5 — and R6's best next hop
//!   to core R4 is R2, *on the same subnet* (the proxy-ack scenario);
//! * R1–R3, R2–R3, R3–R4 links (joins from S1 and S4 meet at R3);
//! * R4 is the primary core, with member subnets S5/S6/S7 directly
//!   attached, and children R3 and R7 during the §5 data walkthrough;
//! * R7 serves member subnet S9 (host E — the -02 teardown example);
//! * R8 (parent R4) is DR for S10 (sender G) and member subnet S14,
//!   with children R9 and R12 on separate interfaces;
//! * R9 is the secondary core, serving memberless S12, child R10;
//! * R10 is DR for member subnets S13 (host H) and S15 (host J);
//! * R12 serves stub subnet S11 (host L) so the figure's fifteen
//!   subnets S1..S15 are all present. (The original figure shows no
//!   R11; none of the narratives reference one.)
//!
//! ## Figure 5 (the loop-detection example)
//!
//! Six routers; R1 is the core. The §6.3 walkthrough needs the tree
//! R1–R2–R3–R4–R5 in place, R6 off-tree, and the *stale* unicast
//! opinions R3→R6, R6→R5 "toward R1" that create the transient loop —
//! those are injected by the scenario driver, the physical edges here
//! merely make them plausible: R1–R2, R2–R3, R3–R4, R4–R5, R5–R6, R6–R3.

use crate::network::{HostId, LanId, NetworkBuilder, NetworkSpec, RouterId};

/// Handles into the Figure 1 network, named exactly as in the spec.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The network itself.
    pub net: NetworkSpec,
    /// Routers R1..R10 and R12 (the figure has no R11).
    pub r: Vec<RouterId>,
    /// Subnets S1..S15.
    pub s: Vec<LanId>,
    /// Hosts by letter.
    pub hosts: Figure1Hosts,
}

/// The member hosts of Figure 1.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names are the spec's host letters
pub struct Figure1Hosts {
    pub a: HostId,
    pub b: HostId,
    pub c: HostId,
    pub d: HostId,
    pub e: HostId,
    pub f: HostId,
    pub g: HostId,
    pub h: HostId,
    pub i: HostId,
    pub j: HostId,
    pub k: HostId,
    pub l: HostId,
}

impl Figure1 {
    /// Router by spec number (1..=10 or 12).
    ///
    /// # Panics
    /// Panics on numbers the figure does not contain (0, 11, 13+).
    pub fn router(&self, n: usize) -> RouterId {
        match n {
            1..=10 => self.r[n - 1],
            12 => self.r[10],
            _ => panic!("figure 1 has no router R{n}"),
        }
    }

    /// Subnet by spec number (1..=15).
    pub fn subnet(&self, n: usize) -> LanId {
        self.s[n - 1]
    }

    /// The primary core of the walkthroughs: R4.
    pub fn primary_core(&self) -> RouterId {
        self.router(4)
    }

    /// The secondary core of the walkthroughs: R9.
    pub fn secondary_core(&self) -> RouterId {
        self.router(9)
    }
}

/// Builds the Figure 1 example network.
pub fn figure1() -> Figure1 {
    let mut b = NetworkBuilder::new();
    // Routers in spec order. Creation order fixes identity addresses
    // (R1 lowest), matching the spec's implicit "R2 is lower-addressed
    // than R5" tie-break in the -02 DR election example.
    let r1 = b.router("R1");
    let r2 = b.router("R2");
    let r3 = b.router("R3");
    let r4 = b.router("R4");
    let r5 = b.router("R5");
    let r6 = b.router("R6");
    let r7 = b.router("R7");
    let r8 = b.router("R8");
    let r9 = b.router("R9");
    let r10 = b.router("R10");
    let r12 = b.router("R12");

    let s: Vec<LanId> = (1..=15).map(|i| b.lan(format!("S{i}"))).collect();
    let lan = |i: usize| s[i - 1];

    // S1: host A behind R1 only.
    b.attach(lan(1), r1);
    let a = b.host("A", lan(1));
    // S2: stub subnet below R2.
    b.attach(lan(2), r2);
    // S3: host C behind R1.
    b.attach(lan(3), r1);
    let c = b.host("C", lan(3));
    // S4: B's subnet with three routers. R6 attaches first so it gets
    // the lowest address on S4 and is the IGMP querier = CBT D-DR,
    // matching "assume R6 has been elected IGMP-querier and CBT D-DR".
    b.attach(lan(4), r6);
    b.attach(lan(4), r2);
    b.attach(lan(4), r5);
    let host_b = b.host("B", lan(4));
    // Core-side member subnets on R4.
    b.attach(lan(5), r4);
    let d = b.host("D", lan(5));
    b.attach(lan(6), r4);
    let f = b.host("F", lan(6));
    b.attach(lan(7), r4);
    let i = b.host("I", lan(7));
    // S8: stub behind R6.
    b.attach(lan(8), r6);
    // S9: member subnet behind R7.
    b.attach(lan(9), r7);
    let e = b.host("E", lan(9));
    // S10: sender G's subnet behind R8.
    b.attach(lan(10), r8);
    let g = b.host("G", lan(10));
    // S11: stub subnet behind R12.
    b.attach(lan(11), r12);
    let l = b.host("L", lan(11));
    // S12: memberless subnet behind R9.
    b.attach(lan(12), r9);
    // S13 & S15: member subnets behind R10.
    b.attach(lan(13), r10);
    let h = b.host("H", lan(13));
    b.attach(lan(15), r10);
    let j = b.host("J", lan(15));
    // S14: member subnet behind R8.
    b.attach(lan(14), r8);
    let k = b.host("K", lan(14));

    // Backbone links.
    b.link(r1, r3, 1);
    b.link(r2, r3, 1);
    b.link(r3, r4, 1);
    b.link(r4, r7, 1);
    b.link(r4, r8, 1);
    b.link(r8, r9, 1);
    b.link(r8, r12, 1);
    b.link(r9, r10, 1);

    let net = b.build();
    Figure1 {
        net,
        r: vec![r1, r2, r3, r4, r5, r6, r7, r8, r9, r10, r12],
        s,
        hosts: Figure1Hosts { a, b: host_b, c, d, e, f, g, h, i, j, k, l },
    }
}

/// Handles into the Figure 5 loop-example network.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// The network.
    pub net: NetworkSpec,
    /// Routers R1..R6 (R1 is the core).
    pub r: Vec<RouterId>,
}

impl Figure5 {
    /// Router by spec number (1..=6).
    pub fn router(&self, n: usize) -> RouterId {
        self.r[n - 1]
    }
}

/// Builds the Figure 5 loop topology.
pub fn figure5_loop() -> Figure5 {
    let mut b = NetworkBuilder::new();
    let r: Vec<RouterId> = (1..=6).map(|i| b.router(format!("R{i}"))).collect();
    // Give each router a stub LAN so any of them can serve members.
    for (i, &router) in r.iter().enumerate() {
        let lan = b.lan(format!("S{}", i + 1));
        b.attach(lan, router);
        b.host(format!("H{}", i + 1), lan);
    }
    b.link(r[0], r[1], 1); // R1–R2
    b.link(r[1], r[2], 1); // R2–R3
    b.link(r[2], r[3], 1); // R3–R4
    b.link(r[3], r[4], 1); // R4–R5
    b.link(r[4], r[5], 1); // R5–R6
    b.link(r[5], r[2], 1); // R6–R3
    Figure5 { net: b.build(), r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use crate::shortest::ShortestPaths;

    #[test]
    fn figure1_has_all_named_entities() {
        let f = figure1();
        assert_eq!(f.net.routers.len(), 11);
        assert_eq!(f.net.lans.len(), 15);
        for i in 1..=10 {
            assert_eq!(f.net.routers[f.router(i).0 as usize].name, format!("R{i}"));
        }
        assert_eq!(f.net.routers[f.router(12).0 as usize].name, "R12");
        for i in 1..=15 {
            assert_eq!(f.net.lans[f.subnet(i).0 as usize].name, format!("S{i}"));
        }
    }

    #[test]
    #[should_panic(expected = "no router R11")]
    fn figure1_has_no_r11() {
        figure1().router(11);
    }

    #[test]
    fn figure1_is_connected() {
        assert!(figure1().net.router_graph().is_connected());
    }

    /// §2.5: "R1 ... proceeds to unicast a JOIN-REQUEST ... to the
    /// next-hop on the path to R4 (R3)".
    #[test]
    fn r1_reaches_core_via_r3() {
        let f = figure1();
        let g = f.net.router_graph();
        let to_r4 = ShortestPaths::dijkstra(&g, NodeId(f.router(4).0));
        let path = to_r4.path_to_root(NodeId(f.router(1).0)).unwrap();
        let names: Vec<_> = path.iter().map(|n| f.net.routers[n.idx()].name.as_str()).collect();
        assert_eq!(names, ["R1", "R3", "R4"]);
    }

    /// §2.6: R6's best next hop to R4 is R2, on R6's own subnet S4, and
    /// the full path continues R2 → R3 → R4.
    #[test]
    fn r6_reaches_core_through_same_subnet_r2() {
        let f = figure1();
        let g = f.net.router_graph();
        let to_r4 = ShortestPaths::dijkstra(&g, NodeId(f.router(4).0));
        let path = to_r4.path_to_root(NodeId(f.router(6).0)).unwrap();
        let names: Vec<_> = path.iter().map(|n| f.net.routers[n.idx()].name.as_str()).collect();
        assert_eq!(names, ["R6", "R2", "R3", "R4"]);
        // And R2 really shares S4 with R6.
        let s4 = f.subnet(4);
        assert!(f.net.routers[f.router(2).0 as usize].iface_on_lan(s4).is_some());
        assert!(f.net.routers[f.router(6).0 as usize].iface_on_lan(s4).is_some());
    }

    /// The querier/D-DR on S4 must be R6 (lowest address there).
    #[test]
    fn r6_is_lowest_addressed_on_s4() {
        let f = figure1();
        let s4 = f.subnet(4);
        let addr_of =
            |n: usize| f.net.routers[f.router(n).0 as usize].iface_on_lan(s4).unwrap().1.addr;
        assert!(addr_of(6) < addr_of(2));
        assert!(addr_of(6) < addr_of(5));
    }

    /// §5 walkthrough: R8's children R9 and R12 are on different
    /// interfaces, and R8 serves S10 and S14.
    #[test]
    fn r8_neighbourhood_matches_walkthrough() {
        let f = figure1();
        let g = f.net.router_graph();
        let r8 = NodeId(f.router(8).0);
        let neigh: Vec<_> =
            g.neighbors(r8).map(|(n, _)| f.net.routers[n.idx()].name.clone()).collect();
        assert!(neigh.contains(&"R4".to_string()));
        assert!(neigh.contains(&"R9".to_string()));
        assert!(neigh.contains(&"R12".to_string()));
        let r8s = &f.net.routers[f.router(8).0 as usize];
        assert!(r8s.iface_on_lan(f.subnet(10)).is_some());
        assert!(r8s.iface_on_lan(f.subnet(14)).is_some());
    }

    #[test]
    fn member_hosts_live_on_the_right_subnets() {
        let f = figure1();
        let on = |h: HostId| f.net.hosts[h.0 as usize].lan;
        assert_eq!(on(f.hosts.a), f.subnet(1));
        assert_eq!(on(f.hosts.b), f.subnet(4));
        assert_eq!(on(f.hosts.c), f.subnet(3));
        assert_eq!(on(f.hosts.e), f.subnet(9));
        assert_eq!(on(f.hosts.g), f.subnet(10));
        assert_eq!(on(f.hosts.h), f.subnet(13));
        assert_eq!(on(f.hosts.j), f.subnet(15));
    }

    #[test]
    fn figure5_shape() {
        let f = figure5_loop();
        let g = f.net.router_graph();
        assert_eq!(g.node_count(), 6);
        assert!(g.is_connected());
        // The loop R3–R4–R5–R6–R3 exists physically.
        let id = |n: usize| NodeId(f.router(n).0);
        assert!(g.has_edge(id(3), id(4)));
        assert!(g.has_edge(id(4), id(5)));
        assert!(g.has_edge(id(5), id(6)));
        assert!(g.has_edge(id(6), id(3)));
        assert!(g.has_edge(id(1), id(2)));
        assert!(g.has_edge(id(2), id(3)));
    }
}
