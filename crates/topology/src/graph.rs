//! An undirected weighted graph over dense integer node ids.
//!
//! Kept deliberately simple (adjacency lists over a `Vec`) — topology
//! sizes in the evaluation are a few hundred routers, and determinism
//! matters more than asymptotics: neighbour iteration order is the
//! insertion order, so every algorithm downstream is reproducible.

use std::fmt;

/// Dense node identifier: index into the graph's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Edge weight (unicast metric). Integer weights keep comparisons exact.
pub type EdgeWeight = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    to: NodeId,
    weight: EdgeWeight,
}

/// An undirected weighted graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() as u32 - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All node ids in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Adds an undirected edge. Parallel edges are rejected (the lower
    /// weight wins); self-loops are ignored.
    ///
    /// Returns `true` if a new edge was inserted.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: EdgeWeight) -> bool {
        assert!(a.idx() < self.adj.len() && b.idx() < self.adj.len(), "edge endpoints must exist");
        if a == b {
            return false;
        }
        if let Some(e) = self.adj[a.idx()].iter_mut().find(|e| e.to == b) {
            let w = e.weight.min(weight);
            e.weight = w;
            if let Some(rev) = self.adj[b.idx()].iter_mut().find(|e| e.to == a) {
                rev.weight = w;
            }
            return false;
        }
        self.adj[a.idx()].push(Edge { to: b, weight });
        self.adj[b.idx()].push(Edge { to: a, weight });
        self.edge_count += 1;
        true
    }

    /// True if an edge `a — b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(a.idx()).is_some_and(|es| es.iter().any(|e| e.to == b))
    }

    /// The weight of edge `a — b`, if present.
    pub fn edge_weight(&self, a: NodeId, b: NodeId) -> Option<EdgeWeight> {
        self.adj.get(a.idx())?.iter().find(|e| e.to == b).map(|e| e.weight)
    }

    /// Removes the edge `a — b` if present; returns whether it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let before = self.adj[a.idx()].len();
        self.adj[a.idx()].retain(|e| e.to != b);
        if self.adj[a.idx()].len() == before {
            return false;
        }
        self.adj[b.idx()].retain(|e| e.to != a);
        self.edge_count -= 1;
        true
    }

    /// Neighbours of `n` with edge weights, in insertion order.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.adj[n.idx()].iter().map(|e| (e.to, e.weight))
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.idx()].len()
    }

    /// Every undirected edge once, as `(a, b, weight)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, es)| {
            let a = NodeId(i as u32);
            es.iter().filter(move |e| a < e.to).map(move |e| (a, e.to, e.weight))
        })
    }

    /// True if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u.idx()] {
                    seen[u.idx()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Total weight of all edges — the "tree cost" metric when the graph
    /// is a delivery tree (experiment S93-T2).
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|(_, _, w)| u64::from(w)).sum()
    }

    /// True if the graph is a forest (acyclic).
    pub fn is_forest(&self) -> bool {
        // A forest has exactly (nodes - components) edges.
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            let mut stack = vec![NodeId(start as u32)];
            while let Some(v) = stack.pop() {
                for (u, _) in self.neighbors(v) {
                    if !seen[u.idx()] {
                        seen[u.idx()] = true;
                        stack.push(u);
                    }
                }
            }
        }
        self.edge_count == n - components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 2);
        g.add_edge(NodeId(2), NodeId(0), 3);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.total_weight(), 6);
    }

    #[test]
    fn parallel_edge_keeps_lower_weight() {
        let mut g = triangle();
        assert!(!g.add_edge(NodeId(0), NodeId(1), 7));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert!(!g.add_edge(NodeId(0), NodeId(1), 0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(0), "symmetric update");
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::with_nodes(1);
        assert!(!g.add_edge(NodeId(0), NodeId(0), 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_works_both_directions() {
        let mut g = triangle();
        assert!(g.remove_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.remove_edge(NodeId(1), NodeId(0)), "double remove");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn connectivity() {
        let mut g = triangle();
        assert!(g.is_connected());
        let d = g.add_node();
        assert!(!g.is_connected());
        g.add_edge(NodeId(0), d, 1);
        assert!(g.is_connected());
        assert!(Graph::new().is_connected(), "empty graph is trivially connected");
    }

    #[test]
    fn forest_detection() {
        let mut g = Graph::with_nodes(4);
        assert!(g.is_forest(), "no edges");
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        assert!(g.is_forest(), "two disjoint edges");
        g.add_edge(NodeId(1), NodeId(2), 1);
        assert!(g.is_forest(), "a path");
        g.add_edge(NodeId(3), NodeId(0), 1);
        assert!(!g.is_forest(), "a cycle");
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }
}
