//! Protocol-level network descriptions.
//!
//! A [`Graph`] is enough for tree-quality math, but the CBT protocol
//! itself needs more texture: multi-access LAN segments where hosts
//! live and DR election happens, point-to-point links, per-interface
//! subnets/masks (the proxy-ack logic of §2.6 does subnet arithmetic),
//! and a concrete IPv4 addressing plan. [`NetworkSpec`] captures all of
//! that; it is what the simulator instantiates and what the routing
//! substrate computes tables for.
//!
//! ## Addressing plan
//!
//! * LAN `k` owns subnet `10.(1 + k/256).(k%256).0/24`; attached routers
//!   get `.1`, `.2`, … in attach order, hosts get `.100`, `.101`, ….
//!   Attach order therefore decides "lowest-addressed" elections, which
//!   is how tests pin down the spec's walkthrough scenarios.
//! * Point-to-point link `j` owns the /30 `172.31.(j/64).((j%64)·4)`;
//!   its two endpoints get `.1` and `.2` of that /30.
//! * Every router also owns a loopback-style identity address
//!   `10.255.(i/256).(i%256)` used as its stable protocol identity
//!   (core lists, rejoin origins).

use crate::graph::{Graph, NodeId};
use cbt_wire::Addr;
use std::collections::HashMap;
use std::fmt;

/// Index of a router within a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

/// Index of a LAN segment within a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LanId(pub u32);

/// Index of a point-to-point link within a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Index of a host within a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// A router's interface number ("vif index" in the spec's FIB, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfIndex(pub u32);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for IfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

/// What a router interface is plugged into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// A multi-access LAN segment.
    Lan(LanId),
    /// One end of a point-to-point link; `peer` is the router at the
    /// other end.
    Link {
        /// The link.
        link: LinkId,
        /// The other endpoint.
        peer: RouterId,
    },
}

/// One configured interface of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceSpec {
    /// What the interface attaches to.
    pub attachment: Attachment,
    /// This interface's own address.
    pub addr: Addr,
    /// Subnet number of the attached segment/link.
    pub subnet: Addr,
    /// Subnet mask.
    pub mask: Addr,
    /// Routing cost of crossing this interface.
    pub cost: u32,
}

/// A router and its interfaces.
#[derive(Debug, Clone)]
pub struct RouterSpec {
    /// Human-readable name ("R1").
    pub name: String,
    /// Stable identity address (loopback-style).
    pub addr: Addr,
    /// Interfaces in [`IfIndex`] order.
    pub ifaces: Vec<IfaceSpec>,
}

impl RouterSpec {
    /// The interface attached to `lan`, if any.
    pub fn iface_on_lan(&self, lan: LanId) -> Option<(IfIndex, &IfaceSpec)> {
        self.ifaces
            .iter()
            .enumerate()
            .find(|(_, i)| i.attachment == Attachment::Lan(lan))
            .map(|(n, i)| (IfIndex(n as u32), i))
    }

    /// The interface record for `ifindex`.
    pub fn iface(&self, ifindex: IfIndex) -> Option<&IfaceSpec> {
        self.ifaces.get(ifindex.0 as usize)
    }
}

/// A multi-access LAN segment.
#[derive(Debug, Clone)]
pub struct LanSpec {
    /// Human-readable name ("S1").
    pub name: String,
    /// Subnet number.
    pub subnet: Addr,
    /// Subnet mask (always /24 under the default plan).
    pub mask: Addr,
    /// Attached routers in attach (= address) order.
    pub routers: Vec<RouterId>,
    /// Hosts that live on this segment.
    pub hosts: Vec<HostId>,
}

/// A point-to-point link between two routers.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// First endpoint.
    pub a: RouterId,
    /// Second endpoint.
    pub b: RouterId,
    /// Routing cost (both directions).
    pub cost: u32,
}

impl LinkSpec {
    /// The endpoint opposite `r`, if `r` is an endpoint at all.
    pub fn peer_of(&self, r: RouterId) -> Option<RouterId> {
        if self.a == r {
            Some(self.b)
        } else if self.b == r {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An end-system on a LAN.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Human-readable name ("A").
    pub name: String,
    /// The host's address (within its LAN's subnet).
    pub addr: Addr,
    /// The LAN it lives on.
    pub lan: LanId,
}

/// A complete, addressed network description.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// All routers.
    pub routers: Vec<RouterSpec>,
    /// All LAN segments.
    pub lans: Vec<LanSpec>,
    /// All point-to-point links.
    pub links: Vec<LinkSpec>,
    /// All hosts.
    pub hosts: Vec<HostSpec>,
    owner: HashMap<Addr, Owner>,
}

/// Who owns an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// A router (identity or interface address).
    Router(RouterId),
    /// A host.
    Host(HostId),
}

impl NetworkSpec {
    /// Looks up which entity owns `addr` (router identity, router
    /// interface, or host address).
    pub fn owner_of(&self, addr: Addr) -> Option<Owner> {
        self.owner.get(&addr).copied()
    }

    /// The router that owns `addr`, if a router does.
    pub fn router_of(&self, addr: Addr) -> Option<RouterId> {
        match self.owner_of(addr)? {
            Owner::Router(r) => Some(r),
            Owner::Host(_) => None,
        }
    }

    /// Finds a router by name.
    pub fn router_by_name(&self, name: &str) -> Option<RouterId> {
        self.routers.iter().position(|r| r.name == name).map(|i| RouterId(i as u32))
    }

    /// Finds a LAN by name.
    pub fn lan_by_name(&self, name: &str) -> Option<LanId> {
        self.lans.iter().position(|l| l.name == name).map(|i| LanId(i as u32))
    }

    /// Finds a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.hosts.iter().position(|h| h.name == name).map(|i| HostId(i as u32))
    }

    /// The router-level weighted graph: one node per router (node id ==
    /// router index), an edge per p2p link, and a clique of weight-1
    /// edges per LAN (crossing a LAN costs one hop regardless of pair).
    pub fn router_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.routers.len());
        for l in &self.links {
            g.add_edge(NodeId(l.a.0), NodeId(l.b.0), l.cost);
        }
        for lan in &self.lans {
            for (i, &a) in lan.routers.iter().enumerate() {
                for &b in &lan.routers[i + 1..] {
                    g.add_edge(NodeId(a.0), NodeId(b.0), 1);
                }
            }
        }
        g
    }

    /// A router's stable identity address.
    pub fn router_addr(&self, r: RouterId) -> Addr {
        self.routers[r.0 as usize].addr
    }

    /// A host's address.
    pub fn host_addr(&self, h: HostId) -> Addr {
        self.hosts[h.0 as usize].addr
    }

    /// Builds a spec directly from a router-level graph: every edge
    /// becomes a p2p link, and every router additionally gets one stub
    /// LAN with a single host. Random-topology experiments use this so
    /// any router can have local group members.
    pub fn from_graph_with_stub_lans(g: &Graph) -> NetworkSpec {
        let mut b = NetworkBuilder::new();
        let routers: Vec<RouterId> = g.nodes().map(|n| b.router(format!("R{}", n.0))).collect();
        for (a, bb, w) in g.edges() {
            b.link(routers[a.idx()], routers[bb.idx()], w);
        }
        for (i, &r) in routers.iter().enumerate() {
            let lan = b.lan(format!("S{i}"));
            b.attach(lan, r);
            b.host(format!("H{i}"), lan);
        }
        b.build()
    }
}

/// Incremental builder for [`NetworkSpec`]; `build()` assigns the
/// addressing plan.
///
/// ```
/// use cbt_topology::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let r0 = b.router("R0");
/// let r1 = b.router("R1");
/// let lan = b.lan("S0");
/// b.attach(lan, r0);
/// b.host("A", lan);
/// b.link(r0, r1, 1);
/// let net = b.build();
///
/// assert_eq!(net.routers.len(), 2);
/// assert!(net.router_graph().is_connected());
/// // First LAN gets 10.1.0.0/24; R0 attached first → .1.
/// assert_eq!(net.routers[0].ifaces[0].addr.to_string(), "10.1.0.1");
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    routers: Vec<(String, Vec<Attachment>)>,
    lans: Vec<(String, Vec<RouterId>, Vec<HostId>)>,
    links: Vec<LinkSpec>,
    hosts: Vec<(String, LanId)>,
}

impl NetworkBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Adds a router.
    pub fn router(&mut self, name: impl Into<String>) -> RouterId {
        self.routers.push((name.into(), Vec::new()));
        RouterId(self.routers.len() as u32 - 1)
    }

    /// Adds a LAN segment.
    pub fn lan(&mut self, name: impl Into<String>) -> LanId {
        self.lans.push((name.into(), Vec::new(), Vec::new()));
        LanId(self.lans.len() as u32 - 1)
    }

    /// Attaches `router` to `lan`. Attach order fixes addresses (and
    /// therefore querier/DR elections): first attached = lowest.
    pub fn attach(&mut self, lan: LanId, router: RouterId) {
        assert!(
            !self.lans[lan.0 as usize].1.contains(&router),
            "router attached to the same LAN twice"
        );
        self.lans[lan.0 as usize].1.push(router);
        self.routers[router.0 as usize].1.push(Attachment::Lan(lan));
    }

    /// Connects two routers with a point-to-point link of `cost`.
    pub fn link(&mut self, a: RouterId, b: RouterId, cost: u32) -> LinkId {
        assert_ne!(a, b, "self links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { a, b, cost });
        self.routers[a.0 as usize].1.push(Attachment::Link { link: id, peer: b });
        self.routers[b.0 as usize].1.push(Attachment::Link { link: id, peer: a });
        id
    }

    /// Adds a host on `lan`.
    pub fn host(&mut self, name: impl Into<String>, lan: LanId) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push((name.into(), lan));
        self.lans[lan.0 as usize].2.push(id);
        id
    }

    /// Finalises the network, assigning every address.
    ///
    /// # Panics
    /// Panics if the plan's capacity is exceeded (> 65536 LANs/routers
    /// or > 16384 links) — far beyond any experiment here.
    pub fn build(self) -> NetworkSpec {
        assert!(self.lans.len() <= 65536, "too many LANs for the addressing plan");
        assert!(self.links.len() <= 16384, "too many links for the addressing plan");
        assert!(self.routers.len() <= 65536, "too many routers for the addressing plan");
        let lan_subnet = |k: usize| Addr::from_octets(10, (1 + k / 256) as u8, (k % 256) as u8, 0);
        let lan_mask = Addr::from_octets(255, 255, 255, 0);
        let link_subnet =
            |j: usize| Addr::from_octets(172, 31, (j / 64) as u8, ((j % 64) * 4) as u8);
        let link_mask = Addr::from_octets(255, 255, 255, 252);

        let mut owner = HashMap::new();
        let mut routers: Vec<RouterSpec> = self
            .routers
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                let addr = Addr::from_octets(10, 255, (i / 256) as u8, (i % 256) as u8);
                owner.insert(addr, Owner::Router(RouterId(i as u32)));
                RouterSpec { name: name.clone(), addr, ifaces: Vec::new() }
            })
            .collect();

        let lans: Vec<LanSpec> = self
            .lans
            .iter()
            .enumerate()
            .map(|(k, (name, rs, hs))| LanSpec {
                name: name.clone(),
                subnet: lan_subnet(k),
                mask: lan_mask,
                routers: rs.clone(),
                hosts: hs.clone(),
            })
            .collect();

        let hosts: Vec<HostSpec> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, (name, lan))| {
                let k = lan.0 as usize;
                let pos = lans[k].hosts.iter().position(|h| h.0 as usize == i).unwrap();
                let addr = Addr(lan_subnet(k).0 + 100 + pos as u32);
                owner.insert(addr, Owner::Host(HostId(i as u32)));
                HostSpec { name: name.clone(), addr, lan: *lan }
            })
            .collect();

        // Interfaces, in each router's attachment order.
        for (ri, (_, attachments)) in self.routers.iter().enumerate() {
            for att in attachments {
                let iface = match *att {
                    Attachment::Lan(lan) => {
                        let k = lan.0 as usize;
                        let pos = lans[k]
                            .routers
                            .iter()
                            .position(|r| r.0 as usize == ri)
                            .expect("attachment recorded on both sides");
                        IfaceSpec {
                            attachment: *att,
                            addr: Addr(lan_subnet(k).0 + 1 + pos as u32),
                            subnet: lans[k].subnet,
                            mask: lans[k].mask,
                            cost: 1,
                        }
                    }
                    Attachment::Link { link, peer: _ } => {
                        let j = link.0 as usize;
                        let l = &self.links[j];
                        let end = if l.a.0 as usize == ri { 1 } else { 2 };
                        IfaceSpec {
                            attachment: *att,
                            addr: Addr(link_subnet(j).0 + end),
                            subnet: link_subnet(j),
                            mask: link_mask,
                            cost: l.cost,
                        }
                    }
                };
                owner.insert(iface.addr, Owner::Router(RouterId(ri as u32)));
                routers[ri].ifaces.push(iface);
            }
        }

        NetworkSpec { routers, lans, links: self.links, hosts, owner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NetworkSpec {
        // R0 —lan S0(+host A)— R1 —link— R2 —lan S1(+host B)
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        b.attach(s0, r1);
        b.host("A", s0);
        b.link(r1, r2, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r2);
        b.host("B", s1);
        b.build()
    }

    #[test]
    fn addressing_plan_is_deterministic() {
        let n = small();
        assert_eq!(n.routers[0].ifaces[0].addr, Addr::from_octets(10, 1, 0, 1));
        assert_eq!(n.routers[1].ifaces[0].addr, Addr::from_octets(10, 1, 0, 2));
        assert_eq!(n.hosts[0].addr, Addr::from_octets(10, 1, 0, 100));
        assert_eq!(n.routers[0].addr, Addr::from_octets(10, 255, 0, 0));
        // Link 0's /30.
        assert_eq!(n.routers[1].ifaces[1].addr, Addr::from_octets(172, 31, 0, 1));
        assert_eq!(n.routers[2].ifaces[0].addr, Addr::from_octets(172, 31, 0, 2));
    }

    #[test]
    fn attach_order_controls_lan_address_order() {
        let n = small();
        let s0 = n.lan_by_name("S0").unwrap();
        let (.., r0_if) = n.routers[0].iface_on_lan(s0).unwrap();
        let (.., r1_if) = n.routers[1].iface_on_lan(s0).unwrap();
        assert!(r0_if.addr < r1_if.addr, "first attached gets the lower address");
    }

    #[test]
    fn owner_lookup_covers_every_assigned_address() {
        let n = small();
        for (i, r) in n.routers.iter().enumerate() {
            assert_eq!(n.owner_of(r.addr), Some(Owner::Router(RouterId(i as u32))));
            for iface in &r.ifaces {
                assert_eq!(n.owner_of(iface.addr), Some(Owner::Router(RouterId(i as u32))));
            }
        }
        for (i, h) in n.hosts.iter().enumerate() {
            assert_eq!(n.owner_of(h.addr), Some(Owner::Host(HostId(i as u32))));
        }
        assert_eq!(n.owner_of(Addr::from_octets(9, 9, 9, 9)), None);
    }

    #[test]
    fn router_graph_reflects_lans_and_links() {
        let n = small();
        let g = n.router_graph();
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)), "same LAN");
        assert!(g.has_edge(NodeId(1), NodeId(2)), "p2p link");
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.is_connected());
    }

    #[test]
    fn lan_clique_in_router_graph() {
        let mut b = NetworkBuilder::new();
        let r: Vec<_> = (0..3).map(|i| b.router(format!("R{i}"))).collect();
        let lan = b.lan("S");
        for &x in &r {
            b.attach(lan, x);
        }
        let g = b.build().router_graph();
        assert_eq!(g.edge_count(), 3, "three routers on one LAN form a triangle");
    }

    #[test]
    fn from_graph_with_stub_lans() {
        let g = crate::generate::ring(4);
        let n = NetworkSpec::from_graph_with_stub_lans(&g);
        assert_eq!(n.routers.len(), 4);
        assert_eq!(n.lans.len(), 4);
        assert_eq!(n.hosts.len(), 4);
        assert_eq!(n.links.len(), 4);
        // The router graph gains no extra router-router edges from the
        // stub LANs (each has a single attached router).
        let rg = n.router_graph();
        assert_eq!(rg.edge_count(), 4);
        assert!(rg.is_connected());
    }

    #[test]
    fn iface_lookup_by_lan_and_index() {
        let n = small();
        let s1 = n.lan_by_name("S1").unwrap();
        let (idx, iface) = n.routers[2].iface_on_lan(s1).unwrap();
        assert_eq!(iface.attachment, Attachment::Lan(s1));
        assert_eq!(n.routers[2].iface(idx).unwrap().addr, iface.addr);
        assert!(n.routers[2].iface(IfIndex(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_attach_panics() {
        let mut b = NetworkBuilder::new();
        let r = b.router("R");
        let l = b.lan("S");
        b.attach(l, r);
        b.attach(l, r);
    }

    #[test]
    fn peer_of() {
        let n = small();
        let l = n.links[0];
        assert_eq!(l.peer_of(RouterId(1)), Some(RouterId(2)));
        assert_eq!(l.peer_of(RouterId(2)), Some(RouterId(1)));
        assert_eq!(l.peer_of(RouterId(0)), None);
    }
}
