//! Topology generators.
//!
//! The SIGCOMM-'93-era multicast evaluations ran on random graphs in
//! the Waxman / Doar–Leslie tradition: nodes scattered on a unit
//! square, edge probability decaying with Euclidean distance. We
//! reproduce that, plus the regular shapes unit tests want. All
//! generators take an explicit seed and are deterministic.

use crate::graph::{Graph, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters for [`waxman`].
#[derive(Debug, Clone, Copy)]
pub struct WaxmanParams {
    /// Number of nodes.
    pub n: usize,
    /// Edge-density parameter α (higher ⇒ more edges). Typical 0.15–0.3.
    pub alpha: f64,
    /// Locality parameter β (higher ⇒ longer edges likelier). Typical 0.1–0.3.
    pub beta: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams { n: 100, alpha: 0.25, beta: 0.2 }
    }
}

/// Generates a connected Waxman random graph.
///
/// Nodes are placed uniformly on the unit square; each pair `(u,v)` gets
/// an edge with probability `α · exp(−d(u,v) / (β · L))` where `L` is
/// the maximum possible distance (√2). If the draw leaves the graph
/// disconnected, each stranded component is stitched to its Euclidean
/// nearest neighbour in the main component — the standard repair that
/// keeps degree distributions Waxman-like while guaranteeing the
/// connectivity every multicast experiment needs.
///
/// Edge weights are 1 (hop-count metric), matching how the '93
/// evaluation measured tree cost and delay in hops.
///
/// Scaling: nodes are bucketed into a spatial grid and each cell pair
/// is sampled with a geometric skip (success probability = the pair's
/// distance-lower-bound edge probability) followed by an accept test
/// at the true probability — an exact per-pair Bernoulli draw without
/// the O(n²) pairwise scan, so 100k-node graphs generate in well under
/// a second at internet-like densities.
pub fn waxman(params: WaxmanParams, seed: u64) -> Graph {
    let WaxmanParams { n, alpha, beta } = params;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let l = 2f64.sqrt();
    let mut g = Graph::with_nodes(n);
    if n >= 2 && alpha > 0.0 {
        let grid = SpatialGrid::build(&pos);
        let beta_l = beta * l;
        for i in 0..grid.occupied.len() {
            for j in i..grid.occupied.len() {
                let (ca, cb) = (grid.occupied[i], grid.occupied[j]);
                sample_cell_pair(&mut g, &mut rng, &grid, &pos, ca, cb, alpha, beta_l);
            }
        }
    }
    stitch_components(&mut g, &pos);
    g
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Uniform grid over the unit square bucketing node indices by
/// position. Cell side is chosen so the number of cell *pairs* stays
/// bounded (≤ ~1.3M at 100k nodes) while cells stay small enough that
/// the distance lower bound is tight for the sampling skip.
struct SpatialGrid {
    /// Cells per axis.
    c: usize,
    /// `buckets[cy * c + cx]` = node indices in that cell, in id order.
    buckets: Vec<Vec<u32>>,
    /// Non-empty cell indices, ascending.
    occupied: Vec<u32>,
}

impl SpatialGrid {
    fn build(pos: &[(f64, f64)]) -> Self {
        let n = pos.len();
        let c = (((n as f64).sqrt() / 8.0) as usize).clamp(1, 40);
        let mut buckets = vec![Vec::new(); c * c];
        for (i, &p) in pos.iter().enumerate() {
            buckets[Self::cell_of(c, p)].push(i as u32);
        }
        let occupied =
            (0..buckets.len() as u32).filter(|&i| !buckets[i as usize].is_empty()).collect();
        SpatialGrid { c, buckets, occupied }
    }

    fn cell_of(c: usize, p: (f64, f64)) -> usize {
        let clamp = |v: f64| ((v * c as f64) as usize).min(c - 1);
        clamp(p.1) * c + clamp(p.0)
    }

    /// Lower bound on the distance between any point of cell `a` and
    /// any point of cell `b` (0 for identical or adjacent cells).
    fn min_dist(&self, a: u32, b: u32) -> f64 {
        let (ax, ay) = ((a as usize % self.c) as f64, (a as usize / self.c) as f64);
        let (bx, by) = ((b as usize % self.c) as f64, (b as usize / self.c) as f64);
        let gap = |u: f64, v: f64| ((u - v).abs() - 1.0).max(0.0) / self.c as f64;
        let (dx, dy) = (gap(ax, bx), gap(ay, by));
        (dx * dx + dy * dy).sqrt()
    }
}

/// Samples every node pair across one cell pair (or within one cell
/// when `ca == cb`): a geometric skip at the cell pair's maximum edge
/// probability selects candidate pairs, each thinned down to its true
/// probability — together an exact Bernoulli draw per pair.
#[allow(clippy::too_many_arguments)]
fn sample_cell_pair(
    g: &mut Graph,
    rng: &mut ChaCha8Rng,
    grid: &SpatialGrid,
    pos: &[(f64, f64)],
    ca: u32,
    cb: u32,
    alpha: f64,
    beta_l: f64,
) {
    let a = &grid.buckets[ca as usize];
    let b = &grid.buckets[cb as usize];
    let same = ca == cb;
    let total: u64 = if same {
        (a.len() as u64) * (a.len() as u64 - 1) / 2
    } else {
        (a.len() as u64) * (b.len() as u64)
    };
    if total == 0 {
        return;
    }
    let p_max = (alpha * (-grid.min_dist(ca, cb) / beta_l).exp()).min(1.0);
    if p_max <= 0.0 {
        return;
    }
    let mut idx: u64 = 0;
    while idx < total {
        // Geometric skip to the next candidate pair. `ln_1p` keeps the
        // denominator exact for tiny p_max — naive `ln(1.0 - p_max)`
        // rounds to 0 below ~1e-16, which would degenerate the skip to
        // a full scan *and* turn the accept ratio p/p_max into ≥ 1 for
        // every far pair (a distance-1.4 "Waxman" edge storm).
        let step = if p_max >= 1.0 {
            1
        } else {
            let u: f64 = rng.gen();
            let skip = (1.0 - u).ln() / (-p_max).ln_1p();
            // Compare in f64: the skip can exceed u64::MAX long before
            // the cast would saturate into a bogus in-range index.
            if skip >= (total - idx) as f64 {
                break;
            }
            1 + skip as u64
        };
        let Some(sel) = idx.checked_add(step - 1) else { break };
        if sel >= total {
            break;
        }
        let (ni, nj) = if same { triangle_pair(a, sel) } else { cross_pair(a, b, sel) };
        let d = dist(pos[ni as usize], pos[nj as usize]);
        let p = alpha * (-d / beta_l).exp();
        // Thinning: accept at the pair's true probability (p ≤ p_max
        // because d ≥ the cell pair's distance lower bound).
        if rng.gen::<f64>() < p / p_max {
            g.add_edge(NodeId(ni), NodeId(nj), 1);
        }
        idx = sel + 1;
    }
}

/// The `k`-th pair `(i, j)` with `i < j` of one bucket, lexicographic.
fn triangle_pair(bucket: &[u32], k: u64) -> (u32, u32) {
    let mut k = k;
    let mut i = 0usize;
    loop {
        let row = (bucket.len() - 1 - i) as u64;
        if k < row {
            return (bucket[i], bucket[i + 1 + k as usize]);
        }
        k -= row;
        i += 1;
    }
}

/// The `k`-th pair of the cross product of two buckets.
fn cross_pair(a: &[u32], b: &[u32], k: u64) -> (u32, u32) {
    (a[(k / b.len() as u64) as usize], b[(k % b.len() as u64) as usize])
}

/// Connects a possibly-disconnected graph by joining each secondary
/// component to the already-connected body (the component of node 0
/// plus everything stitched before it) via the geometrically closest
/// node pair, found with a grid ring search instead of an O(n²) scan.
/// Components are processed in order of their smallest node id; exact
/// distance ties break to the smaller (connected, stranded) id pair.
fn stitch_components(g: &mut Graph, pos: &[(f64, f64)]) {
    let n = g.node_count();
    if n == 0 {
        return;
    }
    // Label components with one flood per component.
    let mut comp = vec![u32::MAX; n];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let id = comps.len() as u32;
        comps.push(vec![start as u32]);
        comp[start] = id;
        stack.push(NodeId(start as u32));
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if comp[u.idx()] == u32::MAX {
                    comp[u.idx()] = id;
                    comps[id as usize].push(u.0);
                    stack.push(u);
                }
            }
        }
    }
    if comps.len() <= 1 {
        return;
    }
    // Grid of connected nodes; starts as component 0, grows per stitch.
    let c = (((n as f64).sqrt() / 8.0) as usize).clamp(1, 40);
    let mut buckets = vec![Vec::new(); c * c];
    for &a in &comps[0] {
        buckets[SpatialGrid::cell_of(c, pos[a as usize])].push(a);
    }
    for stranded in &comps[1..] {
        // Nearest (connected, stranded) pair via expanding cell rings.
        let mut best: Option<(f64, u32, u32)> = None;
        for &b in stranded {
            let p = pos[b as usize];
            let (bcx, bcy) = (SpatialGrid::cell_of(c, p) % c, SpatialGrid::cell_of(c, p) / c);
            for r in 0..c {
                // A hit at ring r can still be beaten by ring r+1
                // (corner vs. face distance), so only stop once the
                // ring's minimum possible distance exceeds the best.
                let ring_floor = (r as f64 - 1.0).max(0.0) / c as f64;
                if best.is_some_and(|(bd, _, _)| ring_floor > bd) {
                    break;
                }
                for (cx, cy) in ring_cells(bcx, bcy, r, c) {
                    for &a in &buckets[cy * c + cx] {
                        let d = dist(pos[a as usize], p);
                        let cand = (d, a, b);
                        if best.is_none_or(|(bd, ba, bb)| (cand.0, cand.1, cand.2) < (bd, ba, bb)) {
                            best = Some(cand);
                        }
                    }
                }
            }
        }
        let (_, a, b) = best.expect("connected body is non-empty");
        g.add_edge(NodeId(a), NodeId(b), 1);
        for &m in stranded {
            buckets[SpatialGrid::cell_of(c, pos[m as usize])].push(m);
        }
    }
}

/// The cells on the Chebyshev ring of radius `r` around `(cx, cy)`,
/// clipped to the grid, in deterministic row-major order.
fn ring_cells(cx: usize, cy: usize, r: usize, c: usize) -> Vec<(usize, usize)> {
    let mut cells = Vec::new();
    let (x0, x1) = (cx.saturating_sub(r), (cx + r).min(c - 1));
    let (y0, y1) = (cy.saturating_sub(r), (cy + r).min(c - 1));
    for y in y0..=y1 {
        for x in x0..=x1 {
            let on_ring = y.abs_diff(cy) == r || x.abs_diff(cx) == r;
            if on_ring {
                cells.push((x, y));
            }
        }
    }
    cells
}

/// Parameters for [`transit_stub`] — a GT-ITM-style two-level
/// hierarchy: a backbone of transit domains, each transit router
/// hosting several stub domains, numbered **transit first** so core
/// placement can target the backbone by id range.
#[derive(Debug, Clone, Copy)]
pub struct TransitStubParams {
    /// Number of transit (backbone) domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_size: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_node: usize,
    /// Routers per stub domain.
    pub stub_size: usize,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 4,
            transit_size: 8,
            stubs_per_transit_node: 3,
            stub_size: 8,
        }
    }
}

impl TransitStubParams {
    /// Number of transit routers (they occupy ids `0..transit_nodes()`).
    pub fn transit_nodes(&self) -> usize {
        self.transit_domains * self.transit_size
    }

    /// Total router count.
    pub fn total_nodes(&self) -> usize {
        self.transit_nodes() * (1 + self.stubs_per_transit_node * self.stub_size)
    }
}

/// Generates a connected transit-stub hierarchical graph.
///
/// Transit domains form a backbone ring with chords (inter-domain
/// weight 4, intra-domain ring+chords weight 2); every transit router
/// hosts `stubs_per_transit_node` stub domains (intra-stub random
/// connected graphs, weight 1) attached by a weight-2 uplink, with a
/// 25% chance of a second weight-4 uplink to another router of the
/// same transit domain (multihomed stubs). O(n) generation,
/// deterministic per seed.
pub fn transit_stub(params: TransitStubParams, seed: u64) -> Graph {
    let TransitStubParams {
        transit_domains: t,
        transit_size: nt,
        stubs_per_transit_node: s,
        stub_size: ns,
    } = params;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(params.total_nodes());
    if t == 0 || nt == 0 {
        return g;
    }
    let id = |v: usize| NodeId(v as u32);
    // Intra-transit-domain: ring + one random chord per router.
    for dom in 0..t {
        let base = dom * nt;
        for k in 0..nt {
            if nt > 1 {
                g.add_edge(id(base + k), id(base + (k + 1) % nt), 2);
            }
            if nt > 2 {
                let other = rng.gen_range(0..nt);
                if other != k {
                    g.add_edge(id(base + k), id(base + other), 2);
                }
            }
        }
    }
    // Inter-domain backbone: ring over domains + one chord per domain.
    for dom in 0..t {
        if t > 1 {
            let next = (dom + 1) % t;
            let a = dom * nt + rng.gen_range(0..nt);
            let b = next * nt + rng.gen_range(0..nt);
            g.add_edge(id(a), id(b), 4);
        }
        if t > 2 {
            let other = rng.gen_range(0..t);
            if other != dom {
                let a = dom * nt + rng.gen_range(0..nt);
                let b = other * nt + rng.gen_range(0..nt);
                g.add_edge(id(a), id(b), 4);
            }
        }
    }
    // Stub domains, numbered after the whole backbone.
    let transit_total = t * nt;
    let mut next_id = transit_total;
    for transit in 0..transit_total {
        let dom = transit / nt;
        for _ in 0..s {
            let base = next_id;
            next_id += ns;
            if ns == 0 {
                continue;
            }
            // Random connected intra-stub graph: attachment tree + extras.
            for k in 1..ns {
                let parent = rng.gen_range(0..k);
                g.add_edge(id(base + k), id(base + parent), 1);
            }
            for _ in 0..ns / 4 {
                let (a, b) = (rng.gen_range(0..ns), rng.gen_range(0..ns));
                if a != b {
                    g.add_edge(id(base + a), id(base + b), 1);
                }
            }
            // Uplink(s) into the transit domain.
            let gw = base + rng.gen_range(0..ns);
            g.add_edge(id(transit), id(gw), 2);
            if nt > 1 && rng.gen::<f64>() < 0.25 {
                let alt = dom * nt + rng.gen_range(0..nt);
                if alt != transit {
                    let gw2 = base + rng.gen_range(0..ns);
                    g.add_edge(id(alt), id(gw2), 4);
                }
            }
        }
    }
    g
}

/// A uniformly random spanning tree over `n` nodes (random attachment:
/// node `i` links to a uniform earlier node), weight-1 edges.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId(i as u32), NodeId(parent as u32), 1);
    }
    g
}

/// A line (path) of `n` nodes.
pub fn line(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), 1);
    }
    g
}

/// A ring of `n` nodes.
pub fn ring(n: usize) -> Graph {
    let mut g = line(n);
    if n > 2 {
        g.add_edge(NodeId(0), NodeId(n as u32 - 1), 1);
    }
    g
}

/// A `rows × cols` grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1);
            }
        }
    }
    g
}

/// A star: node 0 is the hub, nodes `1..n` are spokes.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32), 1);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_deterministic() {
        for seed in 0..10 {
            let g1 = waxman(WaxmanParams { n: 60, ..Default::default() }, seed);
            let g2 = waxman(WaxmanParams { n: 60, ..Default::default() }, seed);
            assert!(g1.is_connected(), "seed {seed}");
            assert_eq!(g1.node_count(), 60);
            let e1: Vec<_> = g1.edges().collect();
            let e2: Vec<_> = g2.edges().collect();
            assert_eq!(e1, e2, "same seed must give identical graphs");
        }
    }

    #[test]
    fn waxman_seeds_differ() {
        let g1 = waxman(WaxmanParams::default(), 1);
        let g2 = waxman(WaxmanParams::default(), 2);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn waxman_density_tracks_alpha() {
        let sparse = waxman(WaxmanParams { n: 80, alpha: 0.05, beta: 0.2 }, 7);
        let dense = waxman(WaxmanParams { n: 80, alpha: 0.6, beta: 0.2 }, 7);
        assert!(
            dense.edge_count() > sparse.edge_count(),
            "dense {} vs sparse {}",
            dense.edge_count(),
            sparse.edge_count()
        );
    }

    #[test]
    fn waxman_survives_pathological_params() {
        // α = 0 draws no edges at all: the stitcher must still deliver a
        // connected graph (a geometric tree).
        let g = waxman(WaxmanParams { n: 20, alpha: 0.0, beta: 0.2 }, 3);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 19);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..5 {
            let g = random_tree(50, seed);
            assert!(g.is_connected());
            assert!(g.is_forest());
            assert_eq!(g.edge_count(), 49);
        }
    }

    #[test]
    fn regular_shapes() {
        assert_eq!(line(5).edge_count(), 4);
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(grid(3, 4).edge_count(), 17);
        assert_eq!(star(6).edge_count(), 5);
        assert!(grid(3, 4).is_connected());
        assert!(ring(3).is_connected());
    }

    #[test]
    fn transit_stub_shape() {
        let p = TransitStubParams::default();
        for seed in 0..3 {
            let g = transit_stub(p, seed);
            assert_eq!(g.node_count(), p.total_nodes());
            assert!(g.is_connected(), "seed {seed}");
            let g2 = transit_stub(p, seed);
            assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        }
        let g = transit_stub(p, 1);
        // Transit routers are numbered first and are better connected
        // than the average stub router.
        let transit = p.transit_nodes();
        let t_deg: usize = (0..transit).map(|i| g.degree(NodeId(i as u32))).sum();
        let s_deg: usize = (transit..p.total_nodes()).map(|i| g.degree(NodeId(i as u32))).sum();
        assert!(
            t_deg as f64 / transit as f64 > s_deg as f64 / (p.total_nodes() - transit) as f64,
            "backbone routers should out-degree stub routers"
        );
    }

    #[test]
    fn transit_stub_degenerate_params() {
        let empty = transit_stub(TransitStubParams { transit_domains: 0, ..Default::default() }, 0);
        assert_eq!(empty.node_count(), 0);
        let no_stubs = transit_stub(
            TransitStubParams {
                transit_domains: 2,
                transit_size: 3,
                stubs_per_transit_node: 0,
                stub_size: 5,
            },
            0,
        );
        assert_eq!(no_stubs.node_count(), 6);
        assert!(no_stubs.is_connected());
        let single = transit_stub(
            TransitStubParams {
                transit_domains: 1,
                transit_size: 1,
                stubs_per_transit_node: 1,
                stub_size: 1,
            },
            0,
        );
        assert_eq!(single.node_count(), 2);
        assert!(single.is_connected());
    }

    #[test]
    fn waxman_grid_sampling_matches_expected_density() {
        // The grid-sampled edge count must track the analytic
        // expectation Σ α·exp(−d/βL): check it lands within a loose
        // band instead of pinning exact counts (the draw is random).
        let params = WaxmanParams { n: 400, alpha: 0.2, beta: 0.15 };
        let g = waxman(params, 42);
        let per_node = 2.0 * g.edge_count() as f64 / 400.0;
        assert!(
            per_node > 2.0 && per_node < 40.0,
            "avg degree {per_node} outside plausibility band"
        );
    }

    #[test]
    fn waxman_tiny_probability_cells_stay_empty() {
        // Regression: at internet scale (large n, small β) far cell
        // pairs have p_max below f64's 1-ulp (~1e-16). A naive
        // `ln(1 - p_max)` rounds to 0 there, which degenerated the
        // geometric skip into a full scan accepting at p/p_max ≈
        // e^{-(d-d_min)/βL} — millions of near-diameter "Waxman"
        // edges and O(n²) runtime. Pin both symptoms: no long edges,
        // and the count near the analytic α·2π(βL)²·C(n,2) ≈ 16k.
        let params = WaxmanParams { n: 10_000, alpha: 0.25, beta: 0.01 };
        let seed = 11;
        let g = waxman(params, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pos: Vec<(f64, f64)> =
            (0..params.n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let long =
            g.edges().filter(|&(a, b, _)| dist(pos[a.0 as usize], pos[b.0 as usize]) > 0.3).count();
        // p(0.3) ≈ 2e-10: expect zero; allow a couple of component
        // stitches, which connect nearest pairs and stay short.
        assert!(long <= 2, "{long} edges longer than 0.3 at βL = 0.014");
        assert!(
            (8_000..40_000).contains(&g.edge_count()),
            "edge count {} far from the ~16k analytic expectation",
            g.edge_count()
        );
    }

    #[test]
    fn tiny_sizes_do_not_panic() {
        for n in 0..3 {
            let _ = line(n);
            let _ = ring(n);
            let _ = star(n.max(1));
            let _ = random_tree(n, 0);
            let _ = waxman(WaxmanParams { n, ..Default::default() }, 0);
        }
    }
}
