//! Topology generators.
//!
//! The SIGCOMM-'93-era multicast evaluations ran on random graphs in
//! the Waxman / Doar–Leslie tradition: nodes scattered on a unit
//! square, edge probability decaying with Euclidean distance. We
//! reproduce that, plus the regular shapes unit tests want. All
//! generators take an explicit seed and are deterministic.

use crate::graph::{Graph, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters for [`waxman`].
#[derive(Debug, Clone, Copy)]
pub struct WaxmanParams {
    /// Number of nodes.
    pub n: usize,
    /// Edge-density parameter α (higher ⇒ more edges). Typical 0.15–0.3.
    pub alpha: f64,
    /// Locality parameter β (higher ⇒ longer edges likelier). Typical 0.1–0.3.
    pub beta: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams { n: 100, alpha: 0.25, beta: 0.2 }
    }
}

/// Generates a connected Waxman random graph.
///
/// Nodes are placed uniformly on the unit square; each pair `(u,v)` gets
/// an edge with probability `α · exp(−d(u,v) / (β · L))` where `L` is
/// the maximum possible distance (√2). If the draw leaves the graph
/// disconnected, each stranded component is stitched to its Euclidean
/// nearest neighbour in the main component — the standard repair that
/// keeps degree distributions Waxman-like while guaranteeing the
/// connectivity every multicast experiment needs.
///
/// Edge weights are 1 (hop-count metric), matching how the '93
/// evaluation measured tree cost and delay in hops.
pub fn waxman(params: WaxmanParams, seed: u64) -> Graph {
    let WaxmanParams { n, alpha, beta } = params;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let l = 2f64.sqrt();
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(pos[i], pos[j]);
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId(i as u32), NodeId(j as u32), 1);
            }
        }
    }
    stitch_components(&mut g, &pos);
    g
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Connects a possibly-disconnected graph by joining each secondary
/// component to the component of node 0 via the geometrically closest
/// pair of nodes.
fn stitch_components(g: &mut Graph, pos: &[(f64, f64)]) {
    let n = g.node_count();
    if n == 0 {
        return;
    }
    loop {
        // Mark the component containing node 0.
        let mut in_main = vec![false; n];
        let mut stack = vec![NodeId(0)];
        in_main[0] = true;
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if !in_main[u.idx()] {
                    in_main[u.idx()] = true;
                    stack.push(u);
                }
            }
        }
        let Some(stranded) = (0..n).find(|&i| !in_main[i]) else { break };
        // Flood the stranded node's component.
        let mut comp = vec![false; n];
        let mut stack = vec![NodeId(stranded as u32)];
        comp[stranded] = true;
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if !comp[u.idx()] {
                    comp[u.idx()] = true;
                    stack.push(u);
                }
            }
        }
        // Closest (main, comp) pair gets the stitch edge.
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..n {
            if !in_main[a] {
                continue;
            }
            for b in 0..n {
                if !comp[b] {
                    continue;
                }
                let d = dist(pos[a], pos[b]);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, a, b));
                }
            }
        }
        let (_, a, b) = best.expect("both components are non-empty");
        g.add_edge(NodeId(a as u32), NodeId(b as u32), 1);
    }
}

/// A uniformly random spanning tree over `n` nodes (random attachment:
/// node `i` links to a uniform earlier node), weight-1 edges.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId(i as u32), NodeId(parent as u32), 1);
    }
    g
}

/// A line (path) of `n` nodes.
pub fn line(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), 1);
    }
    g
}

/// A ring of `n` nodes.
pub fn ring(n: usize) -> Graph {
    let mut g = line(n);
    if n > 2 {
        g.add_edge(NodeId(0), NodeId(n as u32 - 1), 1);
    }
    g
}

/// A `rows × cols` grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1);
            }
        }
    }
    g
}

/// A star: node 0 is the hub, nodes `1..n` are spokes.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32), 1);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_deterministic() {
        for seed in 0..10 {
            let g1 = waxman(WaxmanParams { n: 60, ..Default::default() }, seed);
            let g2 = waxman(WaxmanParams { n: 60, ..Default::default() }, seed);
            assert!(g1.is_connected(), "seed {seed}");
            assert_eq!(g1.node_count(), 60);
            let e1: Vec<_> = g1.edges().collect();
            let e2: Vec<_> = g2.edges().collect();
            assert_eq!(e1, e2, "same seed must give identical graphs");
        }
    }

    #[test]
    fn waxman_seeds_differ() {
        let g1 = waxman(WaxmanParams::default(), 1);
        let g2 = waxman(WaxmanParams::default(), 2);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn waxman_density_tracks_alpha() {
        let sparse = waxman(WaxmanParams { n: 80, alpha: 0.05, beta: 0.2 }, 7);
        let dense = waxman(WaxmanParams { n: 80, alpha: 0.6, beta: 0.2 }, 7);
        assert!(
            dense.edge_count() > sparse.edge_count(),
            "dense {} vs sparse {}",
            dense.edge_count(),
            sparse.edge_count()
        );
    }

    #[test]
    fn waxman_survives_pathological_params() {
        // α = 0 draws no edges at all: the stitcher must still deliver a
        // connected graph (a geometric tree).
        let g = waxman(WaxmanParams { n: 20, alpha: 0.0, beta: 0.2 }, 3);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 19);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..5 {
            let g = random_tree(50, seed);
            assert!(g.is_connected());
            assert!(g.is_forest());
            assert_eq!(g.edge_count(), 49);
        }
    }

    #[test]
    fn regular_shapes() {
        assert_eq!(line(5).edge_count(), 4);
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(grid(3, 4).edge_count(), 17);
        assert_eq!(star(6).edge_count(), 5);
        assert!(grid(3, 4).is_connected());
        assert!(ring(3).is_connected());
    }

    #[test]
    fn tiny_sizes_do_not_panic() {
        for n in 0..3 {
            let _ = line(n);
            let _ = ring(n);
            let _ = star(n.max(1));
            let _ = random_tree(n, 0);
            let _ = waxman(WaxmanParams { n, ..Default::default() }, 0);
        }
    }
}
