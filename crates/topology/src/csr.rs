//! Arena-backed graph + incremental shortest-path trees.
//!
//! [`CsrGraph`] is a flat, `u32`-indexed compressed-sparse-row view of
//! an undirected weighted graph: one `offsets` array, one directed
//! "slot" per edge direction, and in-place **liveness masks** (per slot
//! and per node) so failures apply without rebuilding anything.
//!
//! [`SpfTree`] is a single-destination shortest-path tree over a
//! `CsrGraph` that supports **incremental repair**: when edges/nodes go
//! down, only the detached subtrees are recomputed (seeded from the
//! still-valid frontier); when they come back, improvements propagate
//! from the restored elements. Both repairs are *exact*: the repaired
//! tree is bit-identical to a from-scratch recompute, because the
//! predecessor rule — `pred[x]` = the smallest-id usable neighbour `u`
//! with `dist[u] + w(u,x) == dist[x]` — is a pure function of the
//! distance field and the live edge set, independent of processing
//! order. That property is what keeps every replay deterministic no
//! matter how the failure schedule was batched.
//!
//! All scratch state (heap, DFS stack, affected list, stamp array)
//! lives in a reusable [`SpfScratch`], so steady-state repairs and
//! full recomputes perform no per-query allocation.

use crate::graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "no node" in `u32` arenas.
pub const NO_NODE: u32 = u32::MAX;
/// Sentinel distance for unreachable nodes.
pub const INF_DIST: u64 = u64::MAX;

/// Flat CSR adjacency with in-place edge/node liveness masks.
///
/// Parallel edges are kept as distinct slots (e.g. a point-to-point
/// link *and* a shared LAN between the same router pair): each can be
/// masked independently, and Dijkstra's relaxation takes the minimum
/// live weight naturally.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets`/`weights`/`live`.
    offsets: Vec<u32>,
    /// Directed slot targets (two slots per undirected edge).
    targets: Vec<u32>,
    /// Directed slot weights (mirrored across the edge's two slots).
    weights: Vec<u32>,
    /// Per-slot liveness; both of an edge's slots are masked together.
    live: Vec<bool>,
    /// Per-node liveness (a down node carries no traffic).
    node_up: Vec<bool>,
}

impl CsrGraph {
    /// Builds the CSR form of an undirected edge list over `n` nodes.
    ///
    /// Returns the graph plus, per input edge, its two directed slot
    /// indices `[a→b, b→a]` — callers keep these to mask specific
    /// edges later (e.g. per-link / per-LAN-pair failure application).
    /// Self-loops are skipped (their slot pair is `[NO_NODE; 2]`).
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> (Self, Vec<[u32; 2]>) {
        let mut deg = vec![0u32; n + 1];
        for &(a, b, _) in edges {
            if a != b {
                deg[a as usize + 1] += 1;
                deg[b as usize + 1] += 1;
            }
        }
        for i in 1..deg.len() {
            deg[i] += deg[i - 1];
        }
        let offsets = deg;
        let slots = offsets[n] as usize;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![NO_NODE; slots];
        let mut weights = vec![0u32; slots];
        let mut pairs = Vec::with_capacity(edges.len());
        for &(a, b, w) in edges {
            if a == b {
                pairs.push([NO_NODE, NO_NODE]);
                continue;
            }
            let sa = cursor[a as usize];
            cursor[a as usize] += 1;
            targets[sa as usize] = b;
            weights[sa as usize] = w;
            let sb = cursor[b as usize];
            cursor[b as usize] += 1;
            targets[sb as usize] = a;
            weights[sb as usize] = w;
            pairs.push([sa, sb]);
        }
        let g =
            CsrGraph { offsets, targets, weights, live: vec![true; slots], node_up: vec![true; n] };
        (g, pairs)
    }

    /// Builds the CSR form of a [`Graph`] (everything live).
    pub fn from_graph(g: &Graph) -> Self {
        let edges: Vec<(u32, u32, u32)> = g.edges().map(|(a, b, w)| (a.0, b.0, w)).collect();
        Self::from_edges(g.node_count(), &edges).0
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_up.len()
    }

    /// Number of directed slots (2× undirected edge count).
    pub fn slot_count(&self) -> usize {
        self.targets.len()
    }

    /// Masks or unmasks one directed slot. Callers mask both of an
    /// edge's slots (from the pair returned by [`CsrGraph::from_edges`]).
    pub fn set_slot_live(&mut self, slot: u32, up: bool) {
        if slot != NO_NODE {
            self.live[slot as usize] = up;
        }
    }

    /// Is this slot live?
    pub fn slot_live(&self, slot: u32) -> bool {
        slot != NO_NODE && self.live[slot as usize]
    }

    /// Marks a node up or down in place.
    pub fn set_node_up(&mut self, node: u32, up: bool) {
        self.node_up[node as usize] = up;
    }

    /// Is this node up?
    pub fn is_node_up(&self, node: u32) -> bool {
        self.node_up[node as usize]
    }

    /// The slot index range of node `u`.
    #[inline]
    fn slot_range(&self, u: u32) -> std::ops::Range<usize> {
        self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize
    }

    /// Live, up-target neighbours of `u` as `(node, weight)`. The
    /// caller is responsible for checking `u` itself is up.
    #[inline]
    pub fn live_neighbors(&self, u: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.slot_range(u).filter_map(move |s| {
            let v = self.targets[s];
            (self.live[s] && self.node_up[v as usize]).then_some((v, self.weights[s]))
        })
    }

    /// Approximate heap footprint in bytes (arena arrays only).
    pub fn mem_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.len() * 4
            + self.live.len()
            + self.node_up.len()
    }
}

/// Reusable scratch state for full SPF runs and incremental repairs.
///
/// One instance serves any number of trees over graphs of any size —
/// arrays grow to the largest graph seen and are reset in O(1) via a
/// stamp counter.
#[derive(Debug, Default)]
pub struct SpfScratch {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    stack: Vec<u32>,
    affected: Vec<u32>,
    seeds: Vec<u32>,
    stamp: Vec<u32>,
    cur: u32,
}

impl SpfScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        SpfScratch::default()
    }

    /// Sizes the stamp array for an `n`-node graph and clears
    /// per-call state.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.cur == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 0;
        }
        self.cur += 1;
        self.heap.clear();
        self.stack.clear();
        self.affected.clear();
        self.seeds.clear();
    }

    #[inline]
    fn mark(&mut self, x: u32) -> bool {
        let slot = &mut self.stamp[x as usize];
        if *slot == self.cur {
            false
        } else {
            *slot = self.cur;
            true
        }
    }

    #[inline]
    fn marked(&self, x: u32) -> bool {
        self.stamp[x as usize] == self.cur
    }
}

/// A single-destination shortest-path tree with incremental repair.
///
/// Semantics match [`crate::ShortestPaths`] over the failure-filtered
/// graph: the root always has distance 0 (even when down — mirroring
/// how the RIB treats `dist(dst, dst)`), no path traverses a down node
/// or a masked slot, and ties resolve to the smallest-id predecessor.
#[derive(Debug, Clone)]
pub struct SpfTree {
    root: u32,
    dist: Vec<u64>,
    pred: Vec<u32>,
    /// Intrusive child lists (`child_head[p]` → `child_next`/`child_prev`
    /// chain) mirroring `pred` — used to detach whole subtrees in O(size).
    child_head: Vec<u32>,
    child_next: Vec<u32>,
    child_prev: Vec<u32>,
}

impl SpfTree {
    /// Runs a full Dijkstra toward `root`, reusing `scratch`.
    pub fn full(g: &CsrGraph, root: u32, scratch: &mut SpfScratch) -> Self {
        let mut t = SpfTree {
            root,
            dist: Vec::new(),
            pred: Vec::new(),
            child_head: Vec::new(),
            child_next: Vec::new(),
            child_prev: Vec::new(),
        };
        t.recompute_full(g, scratch);
        t
    }

    /// From-scratch recompute in place; returns the number of nodes
    /// settled (the cost a repair is compared against).
    pub fn recompute_full(&mut self, g: &CsrGraph, scratch: &mut SpfScratch) -> u64 {
        let n = g.node_count();
        scratch.begin(n);
        self.dist.clear();
        self.dist.resize(n, INF_DIST);
        self.pred.clear();
        self.pred.resize(n, NO_NODE);
        self.child_head.clear();
        self.child_head.resize(n, NO_NODE);
        self.child_next.clear();
        self.child_next.resize(n, NO_NODE);
        self.child_prev.clear();
        self.child_prev.resize(n, NO_NODE);
        if n == 0 {
            return 0;
        }
        self.dist[self.root as usize] = 0;
        let mut settled = 1u64;
        if g.is_node_up(self.root) {
            scratch.heap.push(Reverse((0, self.root)));
        }
        while let Some(Reverse((d, x))) = scratch.heap.pop() {
            if self.dist[x as usize] != d {
                continue; // stale entry
            }
            for (y, w) in g.live_neighbors(x) {
                let nd = d + u64::from(w);
                let old = self.dist[y as usize];
                if nd < old {
                    if old == INF_DIST {
                        settled += 1;
                    }
                    self.dist[y as usize] = nd;
                    self.pred[y as usize] = x;
                    scratch.heap.push(Reverse((nd, y)));
                } else if nd == old && x < self.pred[y as usize] && y != self.root {
                    self.pred[y as usize] = x;
                }
            }
        }
        // Build the child lists to mirror pred.
        for x in 0..n as u32 {
            let p = self.pred[x as usize];
            if p != NO_NODE {
                self.link_child(p, x);
            }
        }
        settled
    }

    /// The tree root (destination).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Distance from `n` to the root, if reachable.
    pub fn dist(&self, n: u32) -> Option<u64> {
        match self.dist.get(n as usize) {
            Some(&d) if d != INF_DIST => Some(d),
            _ => None,
        }
    }

    /// Next hop from `n` toward the root (its predecessor). `None` for
    /// the root itself or unreachable nodes.
    pub fn toward_root(&self, n: u32) -> Option<u32> {
        match self.pred.get(n as usize) {
            Some(&p) if p != NO_NODE => Some(p),
            _ => None,
        }
    }

    /// Full path `n → … → root`, inclusive, if `n` is reachable.
    pub fn path_to_root(&self, n: u32) -> Option<Vec<u32>> {
        self.dist(n)?;
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.toward_root(cur) {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        Some(path)
    }

    /// Number of reachable nodes (root inclusive).
    pub fn reached(&self) -> u64 {
        self.dist.iter().filter(|&&d| d != INF_DIST).count() as u64
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.dist.len() * 8 + self.pred.len() * 4 * 4
    }

    #[inline]
    fn link_child(&mut self, p: u32, x: u32) {
        let head = self.child_head[p as usize];
        self.child_prev[x as usize] = NO_NODE;
        self.child_next[x as usize] = head;
        if head != NO_NODE {
            self.child_prev[head as usize] = x;
        }
        self.child_head[p as usize] = x;
    }

    #[inline]
    fn unlink_child(&mut self, x: u32) {
        let p = self.pred[x as usize];
        if p == NO_NODE {
            return;
        }
        let prev = self.child_prev[x as usize];
        let next = self.child_next[x as usize];
        if prev == NO_NODE {
            self.child_head[p as usize] = next;
        } else {
            self.child_next[prev as usize] = next;
        }
        if next != NO_NODE {
            self.child_prev[next as usize] = prev;
        }
        self.child_prev[x as usize] = NO_NODE;
        self.child_next[x as usize] = NO_NODE;
    }

    /// Re-points `pred[x]` to `p`, keeping the child lists consistent.
    #[inline]
    fn set_pred(&mut self, x: u32, p: u32) {
        if self.pred[x as usize] == p {
            return;
        }
        self.unlink_child(x);
        self.pred[x as usize] = p;
        if p != NO_NODE {
            self.link_child(p, x);
        }
    }

    /// Exact predecessor for a node with a settled finite distance:
    /// the smallest-id usable neighbour on a tight edge.
    #[inline]
    fn exact_pred(&self, g: &CsrGraph, x: u32) -> u32 {
        let dx = self.dist[x as usize];
        let mut best = NO_NODE;
        for s in g.slot_range(x) {
            let u = g.targets[s];
            if !g.live[s] || !g.node_up[u as usize] || u >= best {
                continue;
            }
            let du = self.dist[u as usize];
            if du != INF_DIST && du + u64::from(g.weights[s]) == dx {
                best = u;
            }
        }
        best
    }

    /// Repairs the tree after edges/nodes went **down**. The caller has
    /// already masked the slots / node flags in `g`; `removed_pairs`
    /// lists the undirected endpoints of every masked edge and `downed`
    /// the newly-down nodes. Returns the number of nodes touched.
    ///
    /// Only the subtrees hanging off the removed elements are
    /// recomputed, seeded from the unaffected frontier: distances
    /// outside the detached set cannot change (their tree paths avoid
    /// every removed element), and their predecessors stay minimal
    /// because removal only shrinks candidate sets.
    pub fn repair_removals(
        &mut self,
        g: &CsrGraph,
        removed_pairs: &[(u32, u32)],
        downed: &[u32],
        scratch: &mut SpfScratch,
    ) -> u64 {
        let n = g.node_count();
        if n == 0 {
            return 0;
        }
        scratch.begin(n);
        // 1. Detach points: tree edges crossing a removed pair, plus
        // every newly-down node (and, for a down root, its children).
        for &(a, b) in removed_pairs {
            if self.pred[a as usize] == b {
                scratch.seeds.push(a);
            }
            if self.pred[b as usize] == a {
                scratch.seeds.push(b);
            }
        }
        for &r in downed {
            if r == self.root {
                let mut c = self.child_head[r as usize];
                while c != NO_NODE {
                    scratch.seeds.push(c);
                    c = self.child_next[c as usize];
                }
            } else if self.dist[r as usize] != INF_DIST {
                scratch.seeds.push(r);
            }
        }
        // 2. Flood each detach point's subtree via the child lists.
        for i in 0..scratch.seeds.len() {
            let d = scratch.seeds[i];
            if !scratch.mark(d) {
                continue; // already inside another detached subtree
            }
            self.unlink_child(d);
            scratch.affected.push(d);
            scratch.stack.push(d);
            while let Some(x) = scratch.stack.pop() {
                let mut c = self.child_head[x as usize];
                while c != NO_NODE {
                    if scratch.mark(c) {
                        scratch.affected.push(c);
                        scratch.stack.push(c);
                    }
                    c = self.child_next[c as usize];
                }
                self.child_head[x as usize] = NO_NODE;
            }
        }
        for i in 0..scratch.affected.len() {
            let x = scratch.affected[i] as usize;
            self.dist[x] = INF_DIST;
            self.pred[x] = NO_NODE;
            self.child_next[x] = NO_NODE;
            self.child_prev[x] = NO_NODE;
        }
        // 3. Seed every affected node from its best unaffected, settled
        // neighbour, then run Dijkstra restricted to the affected set.
        for i in 0..scratch.affected.len() {
            let x = scratch.affected[i];
            if !g.is_node_up(x) {
                continue;
            }
            let mut best = INF_DIST;
            for s in g.slot_range(x) {
                let u = g.targets[s];
                if !g.live[s] || !g.node_up[u as usize] || scratch.marked(u) {
                    continue;
                }
                let du = self.dist[u as usize];
                if du != INF_DIST {
                    best = best.min(du + u64::from(g.weights[s]));
                }
            }
            if best != INF_DIST {
                self.dist[x as usize] = best;
                scratch.heap.push(Reverse((best, x)));
            }
        }
        while let Some(Reverse((d, x))) = scratch.heap.pop() {
            if self.dist[x as usize] != d {
                continue;
            }
            for s in g.slot_range(x) {
                let y = g.targets[s];
                if !g.live[s] || !g.node_up[y as usize] || !scratch.marked(y) {
                    continue;
                }
                let nd = d + u64::from(g.weights[s]);
                if nd < self.dist[y as usize] {
                    self.dist[y as usize] = nd;
                    scratch.heap.push(Reverse((nd, y)));
                }
            }
        }
        // 4. Exact predecessors for everything reattached.
        for i in 0..scratch.affected.len() {
            let x = scratch.affected[i];
            if self.dist[x as usize] != INF_DIST {
                let p = self.exact_pred(g, x);
                debug_assert_ne!(p, NO_NODE);
                self.set_pred(x, p);
            }
        }
        scratch.affected.len() as u64
    }

    /// Repairs the tree after edges/nodes came back **up**. The caller
    /// has already unmasked slots / node flags in `g`; `added_pairs`
    /// lists the undirected endpoints of every unmasked edge and
    /// `restored` the newly-up nodes. Returns the number of nodes
    /// touched (distance decreased or predecessor re-tied).
    ///
    /// Improvements are seeded across the restored elements and
    /// propagate as a multi-source Dijkstra of strict decreases; an
    /// equal-distance event only re-ties the predecessor (no
    /// propagation needed — the neighbour's own distance is unchanged,
    /// so nothing downstream can change).
    pub fn repair_additions(
        &mut self,
        g: &CsrGraph,
        added_pairs: &[(u32, u32)],
        restored: &[u32],
        scratch: &mut SpfScratch,
    ) -> u64 {
        let n = g.node_count();
        if n == 0 {
            return 0;
        }
        scratch.begin(n);
        for &(a, b) in added_pairs {
            self.seed_across(g, a, b, scratch);
            self.seed_across(g, b, a, scratch);
        }
        for &r in restored {
            if !g.is_node_up(r) {
                continue;
            }
            // Best way *into* r from any settled neighbour…
            for s in g.slot_range(r) {
                let u = g.targets[s];
                if !g.live[s] || !g.node_up[u as usize] {
                    continue;
                }
                let du = self.dist[u as usize];
                if du != INF_DIST {
                    self.relax(g, r, du + u64::from(g.weights[s]), u, scratch);
                }
            }
            // …and let r itself relax outward (covers a restored root,
            // whose distance is 0 without any inbound improvement, and
            // new equal-cost candidacies r creates for its neighbours).
            if self.dist[r as usize] != INF_DIST {
                scratch.heap.push(Reverse((self.dist[r as usize], r)));
            }
        }
        while let Some(Reverse((d, x))) = scratch.heap.pop() {
            if self.dist[x as usize] != d {
                continue;
            }
            for s in g.slot_range(x) {
                let y = g.targets[s];
                if !g.live[s] || !g.node_up[y as usize] {
                    continue;
                }
                self.relax(g, y, d + u64::from(g.weights[s]), x, scratch);
            }
        }
        // Exact predecessors for every touched node.
        for i in 0..scratch.affected.len() {
            let x = scratch.affected[i];
            debug_assert_ne!(self.dist[x as usize], INF_DIST);
            let p = self.exact_pred(g, x);
            debug_assert_ne!(p, NO_NODE);
            self.set_pred(x, p);
        }
        scratch.affected.len() as u64
    }

    /// Seeds an improvement of `b` across the newly-usable pair edge
    /// from `a`, scanning `a`'s slots for live edges to `b`.
    fn seed_across(&mut self, g: &CsrGraph, a: u32, b: u32, scratch: &mut SpfScratch) {
        if !g.is_node_up(a) || !g.is_node_up(b) {
            return;
        }
        let da = self.dist[a as usize];
        if da == INF_DIST {
            return;
        }
        for s in g.slot_range(a) {
            if g.targets[s] == b && g.live[s] {
                self.relax(g, b, da + u64::from(g.weights[s]), a, scratch);
            }
        }
    }

    /// One improvement relaxation: strict decrease propagates; an
    /// equal-distance tie with a smaller-id candidate marks the node
    /// for the exact-pred post-pass without propagating.
    #[inline]
    fn relax(&mut self, _g: &CsrGraph, x: u32, nd: u64, via: u32, scratch: &mut SpfScratch) {
        if x == self.root {
            return; // the root's distance is pinned at 0
        }
        let old = self.dist[x as usize];
        if nd < old {
            self.dist[x as usize] = nd;
            if scratch.mark(x) {
                scratch.affected.push(x);
            }
            scratch.heap.push(Reverse((nd, x)));
        } else if nd == old && via < self.pred[x as usize] && scratch.mark(x) {
            scratch.affected.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, WaxmanParams};
    use crate::graph::NodeId;
    use crate::shortest::ShortestPaths;

    /// 0 —1— 1 —1— 2 —1— 3 and a heavy chord 0 —5— 3.
    fn path_with_chord() -> (CsrGraph, Vec<[u32; 2]>) {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 5)])
    }

    fn assert_matches_reference(g: &CsrGraph, t: &SpfTree, label: &str) {
        let mut scratch = SpfScratch::new();
        let fresh = SpfTree::full(g, t.root(), &mut scratch);
        assert_eq!(t.dist, fresh.dist, "{label}: dist mismatch");
        assert_eq!(t.pred, fresh.pred, "{label}: pred mismatch");
    }

    #[test]
    fn full_matches_shortest_paths_on_graph() {
        let g = generate::waxman(WaxmanParams { n: 60, ..Default::default() }, 11);
        let csr = CsrGraph::from_graph(&g);
        let mut scratch = SpfScratch::new();
        for root in [0u32, 7, 59] {
            let sp = ShortestPaths::dijkstra(&g, NodeId(root));
            let t = SpfTree::full(&csr, root, &mut scratch);
            for x in 0..60u32 {
                assert_eq!(t.dist(x), sp.dist(NodeId(x)), "dist root {root} node {x}");
                assert_eq!(
                    t.toward_root(x),
                    sp.toward_root(NodeId(x)).map(|p| p.0),
                    "pred root {root} node {x}"
                );
            }
        }
    }

    #[test]
    fn mask_and_repair_reroutes() {
        let (mut g, pairs) = path_with_chord();
        let mut scratch = SpfScratch::new();
        let mut t = SpfTree::full(&g, 0, &mut scratch);
        assert_eq!(t.dist(3), Some(3));
        // Cut 1—2: node 2 and 3 must reroute over the chord.
        for s in pairs[1] {
            g.set_slot_live(s, false);
        }
        let touched = t.repair_removals(&g, &[(1, 2)], &[], &mut scratch);
        assert_eq!(t.dist(3), Some(5), "via the chord");
        assert_eq!(t.dist(2), Some(6));
        assert_eq!(t.dist(1), Some(1), "unaffected side untouched");
        assert_eq!(touched, 2, "only nodes 2 and 3 touched");
        assert_matches_reference(&g, &t, "after removal");
        // Restore it.
        for s in pairs[1] {
            g.set_slot_live(s, true);
        }
        t.repair_additions(&g, &[(1, 2)], &[], &mut scratch);
        assert_eq!(t.dist(3), Some(3));
        assert_matches_reference(&g, &t, "after restore");
    }

    #[test]
    fn node_down_and_restore() {
        let (mut g, _) = path_with_chord();
        let mut scratch = SpfScratch::new();
        let mut t = SpfTree::full(&g, 0, &mut scratch);
        g.set_node_up(1, false);
        t.repair_removals(&g, &[], &[1], &mut scratch);
        assert_eq!(t.dist(1), None, "down node unreachable");
        assert_eq!(t.dist(2), Some(6), "around the chord");
        assert_matches_reference(&g, &t, "node down");
        g.set_node_up(1, true);
        t.repair_additions(&g, &[], &[1], &mut scratch);
        assert_eq!(t.dist(2), Some(2));
        assert_matches_reference(&g, &t, "node restored");
    }

    #[test]
    fn down_root_keeps_zero_and_strands_everyone() {
        let (mut g, _) = path_with_chord();
        let mut scratch = SpfScratch::new();
        let mut t = SpfTree::full(&g, 0, &mut scratch);
        g.set_node_up(0, false);
        t.repair_removals(&g, &[], &[0], &mut scratch);
        assert_eq!(t.dist(0), Some(0), "root distance stays pinned");
        for x in 1..4 {
            assert_eq!(t.dist(x), None, "node {x}");
        }
        assert_matches_reference(&g, &t, "root down");
        g.set_node_up(0, true);
        t.repair_additions(&g, &[], &[0], &mut scratch);
        assert_eq!(t.dist(3), Some(3));
        assert_matches_reference(&g, &t, "root restored");
    }

    #[test]
    fn equal_cost_tie_retied_on_restore() {
        // 0—1—3 and 0—2—3, all weight 1: pred(3) must be the
        // smallest-id candidate, and must re-tie when 1 comes back.
        let (mut g, pairs) = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let mut scratch = SpfScratch::new();
        let mut t = SpfTree::full(&g, 0, &mut scratch);
        assert_eq!(t.toward_root(3), Some(1));
        for s in pairs[2] {
            g.set_slot_live(s, false);
        }
        t.repair_removals(&g, &[(1, 3)], &[], &mut scratch);
        assert_eq!(t.toward_root(3), Some(2));
        assert_eq!(t.dist(3), Some(2), "distance unchanged through the tie");
        for s in pairs[2] {
            g.set_slot_live(s, true);
        }
        let touched = t.repair_additions(&g, &[(1, 3)], &[], &mut scratch);
        assert_eq!(t.toward_root(3), Some(1), "tie re-broken to the smaller id");
        assert!(touched >= 1);
        assert_matches_reference(&g, &t, "tie restore");
    }

    #[test]
    fn parallel_slots_mask_independently() {
        // Two parallel edges 0—1: weight 5 (a "link") and weight 1 (a
        // "LAN"). Masking the cheap one must re-route over the dear one
        // even though pred stays the same node.
        let (mut g, pairs) = CsrGraph::from_edges(2, &[(0, 1, 5), (0, 1, 1)]);
        let mut scratch = SpfScratch::new();
        let mut t = SpfTree::full(&g, 0, &mut scratch);
        assert_eq!(t.dist(1), Some(1));
        for s in pairs[1] {
            g.set_slot_live(s, false);
        }
        t.repair_removals(&g, &[(0, 1)], &[], &mut scratch);
        assert_eq!(t.dist(1), Some(5), "falls back to the live parallel slot");
        assert_matches_reference(&g, &t, "parallel mask");
        for s in pairs[1] {
            g.set_slot_live(s, true);
        }
        t.repair_additions(&g, &[(0, 1)], &[], &mut scratch);
        assert_eq!(t.dist(1), Some(1));
        assert_matches_reference(&g, &t, "parallel restore");
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let (g, _) = CsrGraph::from_edges(0, &[]);
        let mut scratch = SpfScratch::new();
        // Zero-node graph: nothing to do, nothing to panic on.
        let mut t = SpfTree {
            root: 0,
            dist: Vec::new(),
            pred: Vec::new(),
            child_head: Vec::new(),
            child_next: Vec::new(),
            child_prev: Vec::new(),
        };
        assert_eq!(t.recompute_full(&g, &mut scratch), 0);
        assert_eq!(t.repair_removals(&g, &[], &[], &mut scratch), 0);
        let (g1, _) = CsrGraph::from_edges(1, &[]);
        let t1 = SpfTree::full(&g1, 0, &mut scratch);
        assert_eq!(t1.dist(0), Some(0));
        assert_eq!(t1.toward_root(0), None);
    }

    #[test]
    fn self_loops_skipped() {
        let (g, pairs) = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 2)]);
        assert_eq!(pairs[0], [NO_NODE, NO_NODE]);
        assert_eq!(g.slot_count(), 2);
        let mut scratch = SpfScratch::new();
        let t = SpfTree::full(&g, 0, &mut scratch);
        assert_eq!(t.dist(1), Some(2));
    }

    #[test]
    fn batched_flaps_match_full_recompute() {
        // A denser random graph with a batch of simultaneous removals
        // followed by a batch of restores, at several roots.
        let g0 = generate::waxman(WaxmanParams { n: 80, alpha: 0.4, beta: 0.3 }, 5);
        let edges: Vec<(u32, u32, u32)> = g0.edges().map(|(a, b, w)| (a.0, b.0, w)).collect();
        let (mut g, pairs) = CsrGraph::from_edges(g0.node_count(), &edges);
        let mut scratch = SpfScratch::new();
        let kill: Vec<usize> = (0..edges.len()).step_by(7).collect();
        for root in [0u32, 13, 79] {
            let mut t = SpfTree::full(&g, root, &mut scratch);
            let mut removed = Vec::new();
            for &e in &kill {
                for s in pairs[e] {
                    g.set_slot_live(s, false);
                }
                removed.push((edges[e].0, edges[e].1));
            }
            g.set_node_up(40, false);
            t.repair_removals(&g, &removed, &[40], &mut scratch);
            assert_matches_reference(&g, &t, "batch removal");
            for &e in &kill {
                for s in pairs[e] {
                    g.set_slot_live(s, true);
                }
            }
            g.set_node_up(40, true);
            t.repair_additions(&g, &removed, &[40], &mut scratch);
            assert_matches_reference(&g, &t, "batch restore");
        }
    }
}
