//! Property tests on the topology substrate: generator invariants,
//! addressing-plan uniqueness, and shortest-path correctness — the
//! foundations every experiment's correctness rests on.

use cbt_topology::{generate, AllPairs, NetworkSpec, NodeId, ShortestPaths};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Waxman graphs are connected, sized correctly and deterministic
    /// for any plausible parameterisation.
    #[test]
    fn waxman_invariants(
        n in 2usize..80,
        alpha in 0.0f64..0.9,
        beta in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let params = generate::WaxmanParams { n, alpha, beta };
        let g1 = generate::waxman(params, seed);
        prop_assert_eq!(g1.node_count(), n);
        prop_assert!(g1.is_connected());
        // No self-loops, no parallel edges (Graph enforces, but check).
        let mut seen = BTreeSet::new();
        for (a, b, _) in g1.edges() {
            prop_assert_ne!(a, b);
            prop_assert!(seen.insert((a, b)), "parallel edge {}-{}", a, b);
        }
        let g2 = generate::waxman(params, seed);
        prop_assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    /// Dijkstra distances satisfy the shortest-path optimality
    /// conditions: d(v) ≤ d(u) + w(u,v) for every edge, with equality
    /// along predecessor edges; reconstructed paths are real paths of
    /// the claimed length.
    #[test]
    fn dijkstra_optimality(n in 2usize..60, seed in any::<u64>()) {
        let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
        let root = NodeId(0);
        let sp = ShortestPaths::dijkstra(&g, root);
        for (a, b, w) in g.edges() {
            let da = sp.dist(a).unwrap();
            let db = sp.dist(b).unwrap();
            prop_assert!(db <= da + u64::from(w), "relaxation violated on {}-{}", a, b);
            prop_assert!(da <= db + u64::from(w), "relaxation violated on {}-{}", b, a);
        }
        for v in g.nodes() {
            let path = sp.path_to_root(v).unwrap();
            prop_assert_eq!(*path.first().unwrap(), v);
            prop_assert_eq!(*path.last().unwrap(), root);
            let mut len = 0u64;
            for hop in path.windows(2) {
                let w = g.edge_weight(hop[0], hop[1]);
                prop_assert!(w.is_some(), "path uses a non-edge");
                len += u64::from(w.unwrap());
            }
            prop_assert_eq!(len, sp.dist(v).unwrap());
        }
    }

    /// Spanning trees over arbitrary member draws are forests whose
    /// member-to-root distances equal graph distances.
    #[test]
    fn spanning_tree_invariants(
        n in 3usize..50,
        seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
        let members: Vec<NodeId> =
            picks.iter().map(|p| NodeId(p % n as u32)).collect();
        let root = NodeId((seed % n as u64) as u32);
        let sp = ShortestPaths::dijkstra(&g, root);
        let tree = sp.tree_spanning(&g, &members);
        prop_assert!(tree.is_forest());
        let tsp = ShortestPaths::dijkstra(&tree, root);
        for m in &members {
            prop_assert_eq!(tsp.dist(*m), sp.dist(*m), "member {} stretched", m);
        }
    }

    /// The addressing plan assigns globally unique addresses across
    /// router identities, interfaces and hosts, and `owner_of` resolves
    /// every one of them.
    #[test]
    fn addressing_plan_is_injective(n in 1usize..40, seed in any::<u64>()) {
        let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
        let net = NetworkSpec::from_graph_with_stub_lans(&g);
        let mut all = BTreeSet::new();
        for r in &net.routers {
            prop_assert!(all.insert(r.addr), "duplicate identity {}", r.addr);
            for i in &r.ifaces {
                prop_assert!(all.insert(i.addr), "duplicate iface addr {}", i.addr);
                // The interface address sits inside its own subnet.
                prop_assert!(i.addr.same_subnet(i.subnet, i.mask));
            }
        }
        for h in &net.hosts {
            prop_assert!(all.insert(h.addr), "duplicate host addr {}", h.addr);
        }
        for addr in all {
            prop_assert!(net.owner_of(addr).is_some(), "unresolvable {addr}");
        }
    }

    /// Graph centre and medoid minimise what they claim to minimise.
    #[test]
    fn centrality_definitions_hold(n in 3usize..40, seed in any::<u64>()) {
        let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
        let ap = AllPairs::compute(&g);
        let center = ap.center().unwrap();
        let ecc_center = ap.eccentricity(center).unwrap();
        for v in g.nodes() {
            prop_assert!(ecc_center <= ap.eccentricity(v).unwrap());
        }
        let members: Vec<NodeId> = (0..n as u32).step_by(3).map(NodeId).collect();
        let medoid = ap.medoid(&members).unwrap();
        let cost = |c: NodeId| -> u64 {
            members.iter().map(|m| ap.dist(c, *m).unwrap()).sum()
        };
        let medoid_cost = cost(medoid);
        for v in g.nodes() {
            prop_assert!(medoid_cost <= cost(v));
        }
    }
}
