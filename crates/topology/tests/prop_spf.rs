//! Property suite for the incremental SPF layer: after any
//! xorshift-random link/node flap schedule, the incrementally repaired
//! tree must be **identical** (distances and predecessors) to a
//! from-scratch recompute over the same masked graph — plus a
//! regression test pinning that a single flap touches a small fraction
//! of the graph, which is the entire point of incremental SPF.

use cbt_topology::csr::{CsrGraph, SpfScratch, SpfTree};
use cbt_topology::generate::{self, WaxmanParams};
use cbt_topology::NodeId;

/// Tiny deterministic xorshift64* — same style as the obs-merge
/// property suite; no external RNG needed.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Harness {
    g: CsrGraph,
    pairs: Vec<[u32; 2]>,
    edges: Vec<(u32, u32)>,
    edge_down: Vec<bool>,
    node_down: Vec<bool>,
}

impl Harness {
    fn new(n: usize, alpha: f64, seed: u64) -> Self {
        let g0 = generate::waxman(WaxmanParams { n, alpha, beta: 0.3 }, seed);
        let edges: Vec<(u32, u32, u32)> = g0.edges().map(|(a, b, w)| (a.0, b.0, w)).collect();
        let (g, pairs) = CsrGraph::from_edges(n, &edges);
        Harness {
            g,
            pairs,
            edge_down: vec![false; edges.len()],
            node_down: vec![false; n],
            edges: edges.iter().map(|&(a, b, _)| (a, b)).collect(),
        }
    }

    /// Toggles a random batch of edges/nodes and applies it to `tree`
    /// in the two-phase (removals, then additions) order the RIB uses.
    /// Returns the number of nodes the repairs touched.
    fn random_batch(&mut self, rng: &mut XorShift, tree: &mut SpfTree, s: &mut SpfScratch) -> u64 {
        let batch = 1 + rng.below(4);
        let mut removed = Vec::new();
        let mut downed = Vec::new();
        let mut added = Vec::new();
        let mut restored = Vec::new();
        for _ in 0..batch {
            if rng.below(4) == 0 {
                // Node flap (rarer, like real router crash/restart).
                let v = rng.below(self.node_down.len()) as u32;
                if self.node_down[v as usize] {
                    self.node_down[v as usize] = false;
                    self.g.set_node_up(v, true);
                    restored.push(v);
                } else {
                    self.node_down[v as usize] = true;
                    self.g.set_node_up(v, false);
                    downed.push(v);
                }
            } else {
                let e = rng.below(self.edges.len());
                let (a, b) = self.edges[e];
                if self.edge_down[e] {
                    self.edge_down[e] = false;
                    for slot in self.pairs[e] {
                        self.g.set_slot_live(slot, true);
                    }
                    added.push((a, b));
                } else {
                    self.edge_down[e] = true;
                    for slot in self.pairs[e] {
                        self.g.set_slot_live(slot, false);
                    }
                    removed.push((a, b));
                }
            }
        }
        let mut touched = tree.repair_removals(&self.g, &removed, &downed, s);
        touched += tree.repair_additions(&self.g, &added, &restored, s);
        touched
    }
}

fn assert_identical(g: &CsrGraph, t: &SpfTree, label: &str) {
    let mut scratch = SpfScratch::new();
    let fresh = SpfTree::full(g, t.root(), &mut scratch);
    for x in 0..g.node_count() as u32 {
        assert_eq!(t.dist(x), fresh.dist(x), "{label}: dist of node {x}");
        assert_eq!(t.toward_root(x), fresh.toward_root(x), "{label}: pred of node {x}");
    }
}

#[test]
fn incremental_repair_equals_full_recompute_under_random_flaps() {
    for seed in 0..24u64 {
        let n = 40 + (seed as usize % 5) * 25;
        let mut h = Harness::new(n, 0.15 + 0.05 * (seed % 3) as f64, seed);
        let mut rng = XorShift::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
        let root = rng.below(n) as u32;
        let mut scratch = SpfScratch::new();
        let mut tree = SpfTree::full(&h.g, root, &mut scratch);
        for step in 0..30 {
            h.random_batch(&mut rng, &mut tree, &mut scratch);
            assert_identical(&h.g, &tree, &format!("seed {seed} step {step}"));
        }
    }
}

#[test]
fn flapping_the_root_itself_stays_exact() {
    // The root is special-cased (distance pinned at 0 even when down):
    // hammer specifically root flaps mixed with edge flaps.
    let mut h = Harness::new(60, 0.2, 99);
    let mut rng = XorShift::new(4242);
    let root = 17u32;
    let mut scratch = SpfScratch::new();
    let mut tree = SpfTree::full(&h.g, root, &mut scratch);
    for step in 0..20 {
        // Toggle the root every other step.
        if step % 2 == 0 {
            let downed = !h.node_down[root as usize];
            h.node_down[root as usize] = downed;
            h.g.set_node_up(root, !downed);
            if downed {
                tree.repair_removals(&h.g, &[], &[root], &mut scratch);
            } else {
                tree.repair_additions(&h.g, &[], &[root], &mut scratch);
            }
        } else {
            h.random_batch(&mut rng, &mut tree, &mut scratch);
        }
        assert_identical(&h.g, &tree, &format!("root-flap step {step}"));
    }
}

#[test]
fn single_flap_touches_a_small_fraction_of_the_graph() {
    // Regression pin for the incremental win: across many single-edge
    // flaps on a 2000-node Waxman graph, the average number of touched
    // nodes must stay well below n — a full recompute touches all n
    // every time. Deterministic seed, so the numbers are stable.
    let n = 2000;
    let mut h = Harness::new(n, 0.05, 7);
    let mut scratch = SpfScratch::new();
    let mut tree = SpfTree::full(&h.g, 0, &mut scratch);
    let mut rng = XorShift::new(31337);
    let flaps = 100;
    let mut total_touched = 0u64;
    for _ in 0..flaps {
        let e = rng.below(h.edges.len());
        let (a, b) = h.edges[e];
        for slot in h.pairs[e] {
            h.g.set_slot_live(slot, false);
        }
        total_touched += tree.repair_removals(&h.g, &[(a, b)], &[], &mut scratch);
        for slot in h.pairs[e] {
            h.g.set_slot_live(slot, true);
        }
        total_touched += tree.repair_additions(&h.g, &[(a, b)], &[], &mut scratch);
    }
    assert_identical(&h.g, &tree, "after flap storm");
    let avg = total_touched as f64 / (2 * flaps) as f64;
    assert!(
        avg < n as f64 / 10.0,
        "single flap touched {avg:.1} nodes on average — incremental SPF \
         should touch ≪ n = {n}"
    );
}

#[test]
fn repairs_agree_with_legacy_dijkstra_when_everything_is_up() {
    // Cross-check the CSR layer against the Vec-of-Vec ShortestPaths
    // implementation on the same graph.
    let g0 = generate::waxman(WaxmanParams { n: 150, alpha: 0.2, beta: 0.25 }, 3);
    let csr = CsrGraph::from_graph(&g0);
    let mut scratch = SpfScratch::new();
    for root in [0u32, 74, 149] {
        let t = SpfTree::full(&csr, root, &mut scratch);
        let sp = cbt_topology::ShortestPaths::dijkstra(&g0, NodeId(root));
        for x in 0..150u32 {
            assert_eq!(t.dist(x), sp.dist(NodeId(x)), "root {root} node {x}");
            assert_eq!(
                t.toward_root(x),
                sp.toward_root(NodeId(x)).map(|p| p.0),
                "root {root} node {x}"
            );
        }
    }
}
