//! # cbt-routing — the unicast routing substrate CBT steers by
//!
//! CBT is deliberately unicast-routing-agnostic: a JOIN_REQUEST is sent
//! "to the next-hop on the (unicast) path to the specified core" (§2.5)
//! and that is the *only* question the protocol ever asks its IGP. This
//! crate answers it.
//!
//! It models a converged link-state IGP: every router effectively knows
//! the router-level topology and runs SPF, yielding per-router next-hop
//! tables ([`Rib`]). Link/router failures are applied through a
//! [`FailureSet`] and the tables recomputed — that is what drives the
//! §6 reconfiguration experiments. Transiently *inconsistent* routing
//! (the §6.3 loop scenario) is modelled with explicit per-router
//! overrides ([`Rib::set_override`]), because a correctly converged IGP
//! never produces the loop the spec defends against.
//!
//! The §5.2 tunnel-ranking mechanism ("routing is replaced by ranking
//! each tunnel interface associated with a particular core address") is
//! implemented in [`ranking`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failure;
pub mod ranking;
pub mod rib;

pub use failure::FailureSet;
pub use ranking::{RankedTunnels, TunnelState};
pub use rib::{Hop, Rib};
