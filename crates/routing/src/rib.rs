//! Per-router next-hop tables (the Routing Information Base).
//!
//! Scalable architecture (replacing the all-pairs table): the router
//! graph lives in an arena-backed CSR ([`cbt_topology::CsrGraph`])
//! with in-place failure masks, and per-destination shortest-path
//! trees are computed **on demand** into an LRU-bounded cache — CBT
//! only ever asks for routes toward cores and members, a tiny
//! fraction of all n² pairs. Failure deltas are applied
//! **incrementally**: masked edges/nodes detach only the affected
//! subtrees of each cached tree and the frontier is re-run, instead
//! of recomputing the world. Every repair is exact (bit-identical to
//! a from-scratch SPF), so replay determinism is preserved no matter
//! when trees were computed, evicted, or repaired; an invalidation
//! generation counts applied failure batches for observability.

use crate::failure::FailureSet;
use cbt_obs::SpfStats;
use cbt_topology::csr::{CsrGraph, SpfScratch, SpfTree};
use cbt_topology::{Attachment, IfIndex, LanId, NetworkSpec, RouterId};
use cbt_wire::Addr;
use std::collections::HashMap;
use std::sync::Mutex;

/// One resolved forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Interface to send out of.
    pub iface: IfIndex,
    /// The next-hop router.
    pub router: RouterId,
    /// The next-hop router's address on the shared medium — this is the
    /// unicast destination for one hop of a hop-by-hop join.
    pub addr: Addr,
    /// Remaining distance to the destination, next hop inclusive.
    pub dist: u64,
}

/// Default bound on cached per-destination trees. CBT workloads route
/// toward cores and member LAN routers, so even internet-scale
/// experiments sit far below this; at 1024 trees × a 100k-node graph
/// the cache is still only ~2.5 GB short of all-pairs' ~240 GB.
const DEFAULT_CACHE_CAP: usize = 1024;

/// One cached per-destination shortest-path tree.
#[derive(Debug)]
struct CacheEntry {
    tree: SpfTree,
    last_used: u64,
}

/// The on-demand tree cache plus the scratch/stat state that rides
/// along under the same lock.
#[derive(Debug, Default)]
struct SpfCache {
    /// Destination router id → slot in `entries`.
    index: HashMap<u32, usize>,
    entries: Vec<CacheEntry>,
    tick: u64,
    cap: usize,
    scratch: SpfScratch,
    stats: SpfStats,
}

impl SpfCache {
    /// Evicts least-recently-used entries until at most `cap` remain.
    fn evict_to_cap(&mut self) {
        while self.entries.len() > self.cap.max(1) {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache non-empty");
            let root = self.entries[victim].tree.root();
            self.index.remove(&root);
            self.entries.swap_remove(victim);
            if victim < self.entries.len() {
                let moved = self.entries[victim].tree.root();
                self.index.insert(moved, victim);
            }
            self.stats.cache_evictions += 1;
        }
    }
}

/// A converged routing table for every router in a network.
///
/// `Rib::compute` builds the failure-masked CSR router graph; SPF
/// trees materialise lazily per destination. Per-router overrides can
/// be layered on to model the transiently inconsistent tables of the
/// §6.3 loop scenario.
#[derive(Debug)]
pub struct Rib {
    /// Arena CSR of the router graph, failure state masked in place.
    graph: CsrGraph,
    /// Per-link endpoints and directed slot pairs (index = LinkId).
    link_ends: Vec<(u32, u32)>,
    link_slots: Vec<[u32; 2]>,
    /// Per-LAN clique pairs: endpoints plus their slot pair.
    lan_pairs: Vec<Vec<(u32, u32, [u32; 2])>>,
    /// The failure set currently masked into `graph`.
    applied: FailureSet,
    /// Bumped once per applied failure delta batch.
    generation: u64,
    /// Manual next-hop overrides: (from, dst_router) → forced next router.
    overrides: HashMap<(RouterId, RouterId), RouterId>,
    /// Lazily-built per-destination trees (interior mutability: route
    /// lookups are `&self` and shared across engine shards).
    cache: Mutex<SpfCache>,
}

impl Rib {
    /// Builds the masked router graph for `net` with `failures`
    /// applied. Trees are computed on first use per destination.
    pub fn compute(net: &NetworkSpec, failures: &FailureSet) -> Self {
        let n = net.routers.len();
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut link_ends = Vec::with_capacity(net.links.len());
        for l in &net.links {
            edges.push((l.a.0, l.b.0, l.cost));
            link_ends.push((l.a.0, l.b.0));
        }
        let mut lan_members: Vec<Vec<(u32, u32)>> = Vec::with_capacity(net.lans.len());
        for lan in &net.lans {
            let mut pairs = Vec::new();
            for (i, &a) in lan.routers.iter().enumerate() {
                for &b in &lan.routers[i + 1..] {
                    pairs.push((a.0, b.0));
                    edges.push((a.0, b.0, 1));
                }
            }
            lan_members.push(pairs);
        }
        let (graph, slot_pairs) = CsrGraph::from_edges(n, &edges);
        let link_slots: Vec<[u32; 2]> = slot_pairs[..link_ends.len()].to_vec();
        let mut cursor = link_ends.len();
        let lan_pairs: Vec<Vec<(u32, u32, [u32; 2])>> = lan_members
            .into_iter()
            .map(|pairs| {
                pairs
                    .into_iter()
                    .map(|(a, b)| {
                        let s = slot_pairs[cursor];
                        cursor += 1;
                        (a, b, s)
                    })
                    .collect()
            })
            .collect();
        let mut rib = Rib {
            graph,
            link_ends,
            link_slots,
            lan_pairs,
            applied: FailureSet::none(),
            generation: 0,
            overrides: HashMap::new(),
            cache: Mutex::new(SpfCache { cap: DEFAULT_CACHE_CAP, ..SpfCache::default() }),
        };
        rib.mask_all(failures);
        rib.applied = failures.clone();
        rib
    }

    /// Convenience: converged tables with nothing failed.
    pub fn converged(net: &NetworkSpec) -> Self {
        Self::compute(net, &FailureSet::none())
    }

    /// Masks `failures` into the CSR graph (fresh-build path only —
    /// there are no cached trees to repair yet).
    fn mask_all(&mut self, failures: &FailureSet) {
        for l in failures.failed_links() {
            if let Some(&slots) = self.link_slots.get(l.0 as usize) {
                for s in slots {
                    self.graph.set_slot_live(s, false);
                }
            }
        }
        for lan in failures.failed_lans() {
            if let Some(pairs) = self.lan_pairs.get(lan.0 as usize) {
                for &(_, _, slots) in pairs {
                    for s in slots {
                        self.graph.set_slot_live(s, false);
                    }
                }
            }
        }
        for r in failures.failed_routers() {
            if (r.0 as usize) < self.graph.node_count() {
                self.graph.set_node_up(r.0, false);
            }
        }
    }

    /// Applies a new failure state **incrementally**: the delta
    /// against the currently-applied set is masked in place and every
    /// cached tree is patched (removals first, then restorations —
    /// the order matters, since an improvement through a restored
    /// element must not be visible while detached subtrees reattach).
    /// Overrides that reference failed elements are cleared; the
    /// invalidation generation is bumped.
    pub fn apply_failures(&mut self, target: &FailureSet) {
        // Diff the target against the applied set. Removals are masked
        // immediately; additions are only *collected* here and unmasked
        // after the removal repairs — a subtree reattaching during the
        // removal phase must not route through a restored element whose
        // improvements haven't been propagated yet.
        let mut removed_pairs: Vec<(u32, u32)> = Vec::new();
        let mut downed: Vec<u32> = Vec::new();
        let mut added_pairs: Vec<(u32, u32)> = Vec::new();
        let mut added_slots: Vec<u32> = Vec::new();
        let mut restored: Vec<u32> = Vec::new();
        for (j, &slots) in self.link_slots.iter().enumerate() {
            let id = cbt_topology::LinkId(j as u32);
            let (was, now) = (self.applied.link_down(id), target.link_down(id));
            if was == now {
                continue;
            }
            let ends = self.link_ends[j];
            if now {
                for s in slots {
                    self.graph.set_slot_live(s, false);
                }
                removed_pairs.push(ends);
            } else {
                added_slots.extend(slots);
                added_pairs.push(ends);
            }
        }
        for (k, pairs) in self.lan_pairs.iter().enumerate() {
            let id = LanId(k as u32);
            let (was, now) = (self.applied.lan_down(id), target.lan_down(id));
            if was == now {
                continue;
            }
            for &(a, b, slots) in pairs {
                if now {
                    for s in slots {
                        self.graph.set_slot_live(s, false);
                    }
                    removed_pairs.push((a, b));
                } else {
                    added_slots.extend(slots);
                    added_pairs.push((a, b));
                }
            }
        }
        for r in 0..self.graph.node_count() as u32 {
            let id = RouterId(r);
            let (was, now) = (self.applied.router_down(id), target.router_down(id));
            if was == now {
                continue;
            }
            if now {
                self.graph.set_node_up(r, false);
                downed.push(r);
            } else {
                restored.push(r);
            }
        }
        // Phase 1: repair every cached tree for the removals.
        let cache = self.cache.get_mut().expect("rib cache poisoned");
        if !removed_pairs.is_empty() || !downed.is_empty() {
            for e in &mut cache.entries {
                let touched = e.tree.repair_removals(
                    &self.graph,
                    &removed_pairs,
                    &downed,
                    &mut cache.scratch,
                );
                cache.stats.record_repair(touched);
            }
        }
        // Phase 2: unmask the restorations, then propagate improvements.
        if !added_pairs.is_empty() || !restored.is_empty() {
            for &s in &added_slots {
                self.graph.set_slot_live(s, true);
            }
            for &r in &restored {
                self.graph.set_node_up(r, true);
            }
            for e in &mut cache.entries {
                let touched = e.tree.repair_additions(
                    &self.graph,
                    &added_pairs,
                    &restored,
                    &mut cache.scratch,
                );
                cache.stats.record_repair(touched);
            }
        }
        cache.stats.apply_batches += 1;
        self.generation += 1;
        self.applied = target.clone();
        // Drop overrides that reference failed elements: either
        // endpoint router down, or no usable adjacency from → via
        // remains (the overridden link/LAN failed).
        let graph = &self.graph;
        self.overrides.retain(|&(from, dst), &mut via| {
            graph.is_node_up(from.0)
                && graph.is_node_up(dst.0)
                && graph.is_node_up(via.0)
                && graph.live_neighbors(from.0).any(|(v, _)| v == via.0)
        });
    }

    /// The number of failure batches applied since construction — the
    /// invalidation generation replay tooling records alongside
    /// failure events.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bounds the number of cached per-destination trees (≥ 1),
    /// evicting least-recently-used trees immediately if over.
    /// Results are unaffected — an evicted tree recomputes
    /// identically — only memory/time trade off.
    pub fn set_cache_capacity(&mut self, cap: usize) {
        let cache = self.cache.get_mut().expect("rib cache poisoned");
        cache.cap = cap.max(1);
        cache.evict_to_cap();
    }

    /// Snapshot of the SPF counters (cache behaviour, repair economics).
    pub fn spf_stats(&self) -> SpfStats {
        self.cache.lock().expect("rib cache poisoned").stats.clone()
    }

    /// Runs `f` against the (cached or freshly computed) tree rooted
    /// at `dst`, updating LRU state.
    fn with_tree<R>(&self, dst: u32, f: impl FnOnce(&SpfTree) -> R) -> Option<R> {
        if dst as usize >= self.graph.node_count() {
            return None;
        }
        let mut cache = self.cache.lock().expect("rib cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(&i) = cache.index.get(&dst) {
            cache.stats.cache_hits += 1;
            cache.entries[i].last_used = tick;
            return Some(f(&cache.entries[i].tree));
        }
        cache.stats.cache_misses += 1;
        let tree = SpfTree::full(&self.graph, dst, &mut cache.scratch);
        cache.stats.record_full(tree.reached());
        cache.entries.push(CacheEntry { tree, last_used: tick });
        let slot = cache.entries.len() - 1;
        cache.index.insert(dst, slot);
        cache.evict_to_cap();
        // The fresh entry may have moved during eviction; look it up.
        let i = *cache.index.get(&dst).expect("fresh entry never evicted first");
        Some(f(&cache.entries[i].tree))
    }

    /// Forces `from`'s next hop toward `dst` to be `via`, regardless of
    /// SPF. `via` must be a physical neighbour for the result to be
    /// resolvable. This models stale/inconsistent tables (§6.3).
    pub fn set_override(&mut self, from: RouterId, dst: RouterId, via: RouterId) {
        self.overrides.insert((from, dst), via);
    }

    /// Clears one override.
    pub fn clear_override(&mut self, from: RouterId, dst: RouterId) {
        self.overrides.remove(&(from, dst));
    }

    /// The next router on `from`'s path toward router `dst`.
    ///
    /// Returns `None` when `dst` is unreachable or `from == dst`.
    pub fn next_router(&self, from: RouterId, dst: RouterId) -> Option<RouterId> {
        if from == dst {
            return None;
        }
        if let Some(&via) = self.overrides.get(&(from, dst)) {
            return Some(via);
        }
        self.with_tree(dst.0, |t| t.toward_root(from.0).map(RouterId))?
    }

    /// Distance (in routing metric) from `from` to router `dst`.
    pub fn dist(&self, from: RouterId, dst: RouterId) -> Option<u64> {
        self.with_tree(dst.0, |t| t.dist(from.0))?
    }

    /// Resolves `from`'s route toward `dst_addr` to a concrete [`Hop`]:
    /// which interface, which next-hop address.
    ///
    /// `dst_addr` may be any address owned by a router (identity or
    /// interface) or by a host (the route then leads to the host's LAN).
    pub fn route(&self, net: &NetworkSpec, from: RouterId, dst_addr: Addr) -> Option<Hop> {
        let dst_router = match net.owner_of(dst_addr)? {
            cbt_topology::network::Owner::Router(r) => r,
            cbt_topology::network::Owner::Host(h) => {
                // Route to the first attached (lowest-addressed) live
                // router of the host's LAN.
                let lan = net.hosts[h.0 as usize].lan;
                *net.lans[lan.0 as usize].routers.first()?
            }
        };
        if dst_router == from {
            return None;
        }
        let next = self.next_router(from, dst_router)?;
        let dist = self.dist(from, dst_router)?;
        let (iface, addr) = resolve_adjacency(net, from, next)?;
        Some(Hop { iface, router: next, addr, dist })
    }
}

/// Finds the interface and next-hop address `from` uses to reach its
/// physical neighbour `next` (shared LAN or p2p link; lowest interface
/// index wins if several qualify).
fn resolve_adjacency(net: &NetworkSpec, from: RouterId, next: RouterId) -> Option<(IfIndex, Addr)> {
    let from_spec = &net.routers[from.0 as usize];
    for (idx, iface) in from_spec.ifaces.iter().enumerate() {
        match iface.attachment {
            Attachment::Link { peer, .. } if peer == next => {
                let peer_spec = &net.routers[next.0 as usize];
                let peer_iface = peer_spec.ifaces.iter().find(|pi| {
                    matches!(pi.attachment, Attachment::Link { peer: p, .. } if p == from)
                        && pi.subnet == iface.subnet
                })?;
                return Some((IfIndex(idx as u32), peer_iface.addr));
            }
            Attachment::Lan(lan) => {
                if let Some((_, peer_iface)) = lan_iface(net, next, lan) {
                    return Some((IfIndex(idx as u32), peer_iface));
                }
            }
            _ => {}
        }
    }
    None
}

fn lan_iface(net: &NetworkSpec, router: RouterId, lan: LanId) -> Option<(IfIndex, Addr)> {
    net.routers[router.0 as usize].iface_on_lan(lan).map(|(i, s)| (i, s.addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::{figure1, NetworkBuilder};

    #[test]
    fn figure1_join_paths() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let r = |n: usize| f.router(n);
        // §2.5: R1 → R4 goes via R3.
        assert_eq!(rib.next_router(r(1), r(4)), Some(r(3)));
        assert_eq!(rib.next_router(r(3), r(4)), Some(r(4)));
        // §2.6: R6 → R4 goes via R2 (same-subnet next hop).
        assert_eq!(rib.next_router(r(6), r(4)), Some(r(2)));
        assert_eq!(rib.next_router(r(2), r(4)), Some(r(3)));
    }

    #[test]
    fn route_resolves_iface_and_addr() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let core_addr = f.net.router_addr(f.router(4));
        let hop = rib.route(&f.net, f.router(1), core_addr).unwrap();
        assert_eq!(hop.router, f.router(3));
        // The hop address is R3's address on the R1–R3 /30.
        let r3 = &f.net.routers[f.router(3).0 as usize];
        assert!(r3.ifaces.iter().any(|i| i.addr == hop.addr));
        assert_eq!(hop.dist, 2);
    }

    #[test]
    fn route_over_shared_lan_targets_peer_lan_address() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let hop = rib.route(&f.net, f.router(6), f.net.router_addr(f.router(4))).unwrap();
        assert_eq!(hop.router, f.router(2));
        let s4 = f.subnet(4);
        let (_, r2_on_s4) = f.net.routers[f.router(2).0 as usize].iface_on_lan(s4).unwrap();
        assert_eq!(hop.addr, r2_on_s4.addr, "next hop address is on the shared LAN");
    }

    #[test]
    fn self_route_is_none() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        assert_eq!(rib.next_router(f.router(4), f.router(4)), None);
        assert!(rib.route(&f.net, f.router(4), f.net.router_addr(f.router(4))).is_none());
    }

    #[test]
    fn link_failure_reroutes_or_disconnects() {
        // R0 —l0— R1 —l1— R2, plus spare path R0 —l2— R3 —l3— R2.
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        let l0 = b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        b.link(r0, r3, 1);
        b.link(r3, r2, 1);
        let net = b.build();

        let rib = Rib::converged(&net);
        assert_eq!(rib.next_router(r0, r2), Some(r1), "prefer via R1 (tie-break id)");

        let mut failures = FailureSet::none();
        failures.fail_link(l0);
        let rib = Rib::compute(&net, &failures);
        assert_eq!(rib.next_router(r0, r2), Some(r3), "reroute after failure");
        assert_eq!(rib.next_router(r0, r1), Some(r3), "R1 now two hops away");

        failures.fail_router(r3);
        let rib = Rib::compute(&net, &failures);
        assert_eq!(rib.next_router(r0, r2), None, "fully cut off");
    }

    #[test]
    fn lan_failure_disconnects_lan_only_paths() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let net = b.build();
        assert_eq!(Rib::converged(&net).next_router(r0, r1), Some(r1));
        let mut failures = FailureSet::none();
        failures.fail_lan(lan);
        assert_eq!(Rib::compute(&net, &failures).next_router(r0, r1), None);
    }

    #[test]
    fn overrides_shadow_spf() {
        let f = figure1();
        let mut rib = Rib::converged(&f.net);
        // Force R3 to (wrongly) believe R4 is reached via R1.
        rib.set_override(f.router(3), f.router(4), f.router(1));
        assert_eq!(rib.next_router(f.router(3), f.router(4)), Some(f.router(1)));
        rib.clear_override(f.router(3), f.router(4));
        assert_eq!(rib.next_router(f.router(3), f.router(4)), Some(f.router(4)));
    }

    #[test]
    fn route_to_host_address_reaches_its_lan() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let host_g = f.net.host_addr(f.hosts.g); // on S10 behind R8
        let hop = rib.route(&f.net, f.router(4), host_g).unwrap();
        assert_eq!(hop.router, f.router(8));
    }

    #[test]
    fn unknown_address_routes_nowhere() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        assert!(rib.route(&f.net, f.router(1), Addr::from_octets(203, 0, 113, 1)).is_none());
    }

    /// Every (from, dst) next hop and distance of `a` must equal `b`'s.
    fn assert_tables_equal(net: &NetworkSpec, a: &Rib, b: &Rib, label: &str) {
        for from in 0..net.routers.len() as u32 {
            for dst in 0..net.routers.len() as u32 {
                let (from, dst) = (RouterId(from), RouterId(dst));
                assert_eq!(
                    a.next_router(from, dst),
                    b.next_router(from, dst),
                    "{label} {from:?}→{dst:?}"
                );
                assert_eq!(a.dist(from, dst), b.dist(from, dst), "{label} dist {from:?}→{dst:?}");
            }
        }
    }

    #[test]
    fn incremental_apply_equals_from_scratch() {
        let f = figure1();
        let mut inc = Rib::converged(&f.net);
        // Warm a few trees so repairs actually run.
        for dst in 0..f.net.routers.len() as u32 {
            let _ = inc.dist(RouterId(0), RouterId(dst));
        }
        let mut failures = FailureSet::none();
        failures.fail_link(cbt_topology::LinkId(0));
        failures.fail_router(f.router(7));
        inc.apply_failures(&failures);
        assert_eq!(inc.generation(), 1);
        let scratch = Rib::compute(&f.net, &failures);
        assert_tables_equal(&f.net, &inc, &scratch, "after failures");
        // Heal everything and fail a LAN in the same batch.
        let mut failures2 = FailureSet::none();
        failures2.fail_lan(f.subnet(4));
        inc.apply_failures(&failures2);
        assert_eq!(inc.generation(), 2);
        let scratch2 = Rib::compute(&f.net, &failures2);
        assert_tables_equal(&f.net, &inc, &scratch2, "after heal + LAN fail");
        let stats = inc.spf_stats();
        assert!(stats.repairs > 0, "incremental repairs must have run");
        assert_eq!(stats.apply_batches, 2);
    }

    #[test]
    fn apply_failures_clears_stale_overrides() {
        // R0 —l0— R1 —l1— R2, plus spare path R0 —l2— R3 —l3— R2.
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        let l0 = b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        b.link(r0, r3, 1);
        b.link(r3, r2, 1);
        let net = b.build();
        let mut rib = Rib::converged(&net);
        rib.set_override(r0, r2, r1); // rides link l0
        rib.set_override(r3, r2, r2); // independent of l0
        let mut failures = FailureSet::none();
        failures.fail_link(l0);
        rib.apply_failures(&failures);
        assert_eq!(
            rib.next_router(r0, r2),
            Some(r3),
            "override referencing the failed link was cleared"
        );
        assert_eq!(rib.next_router(r3, r2), Some(r2), "unrelated override survives");
        // A downed via-router also invalidates.
        let mut rib = Rib::converged(&net);
        rib.set_override(r0, r2, r1);
        let mut failures = FailureSet::none();
        failures.fail_router(r1);
        rib.apply_failures(&failures);
        assert_eq!(rib.next_router(r0, r2), Some(r3), "override through downed router cleared");
    }

    #[test]
    fn lru_cache_bounds_memory_without_changing_results() {
        let f = figure1();
        let mut rib = Rib::converged(&f.net);
        rib.set_cache_capacity(2);
        let reference = Rib::converged(&f.net);
        // Sweep all destinations twice: plenty of evictions, same answers.
        for _ in 0..2 {
            assert_tables_equal(&f.net, &rib, &reference, "bounded cache");
        }
        let stats = rib.spf_stats();
        assert!(stats.cache_evictions > 0, "cap 2 must evict during a full sweep");
        assert!(stats.full_runs > f.net.routers.len() as u64, "evicted trees recompute on demand");
    }

    #[test]
    fn trees_are_computed_on_demand_not_eagerly() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        assert_eq!(rib.spf_stats().full_runs, 0, "construction computes nothing");
        let _ = rib.next_router(f.router(1), f.router(4));
        let s = rib.spf_stats();
        assert_eq!(s.full_runs, 1, "one destination asked for, one tree built");
        assert_eq!(s.cache_misses, 1);
        let _ = rib.dist(f.router(2), f.router(4));
        assert_eq!(rib.spf_stats().cache_hits, 1, "second lookup reuses the tree");
    }
}
