//! Per-router next-hop tables (the Routing Information Base).

use crate::failure::FailureSet;
use cbt_topology::{
    Attachment, Graph, IfIndex, LanId, NetworkSpec, NodeId, RouterId, ShortestPaths,
};
use cbt_wire::Addr;
use std::collections::HashMap;

/// One resolved forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Interface to send out of.
    pub iface: IfIndex,
    /// The next-hop router.
    pub router: RouterId,
    /// The next-hop router's address on the shared medium — this is the
    /// unicast destination for one hop of a hop-by-hop join.
    pub addr: Addr,
    /// Remaining distance to the destination, next hop inclusive.
    pub dist: u64,
}

/// A converged routing table for every router in a network.
///
/// `Rib::compute` runs SPF per destination over the failure-filtered
/// router graph. Per-router overrides can then be layered on to model
/// the transiently inconsistent tables of the §6.3 loop scenario.
#[derive(Debug, Clone)]
pub struct Rib {
    /// `trees[d]` = shortest-path structure rooted at router `d`.
    trees: Vec<ShortestPaths>,
    /// Manual next-hop overrides: (from, dst_router) → forced next router.
    overrides: HashMap<(RouterId, RouterId), RouterId>,
    /// Cached filtered graph (used to resolve hop distances).
    graph: Graph,
}

impl Rib {
    /// Computes converged tables for `net` with `failures` applied.
    pub fn compute(net: &NetworkSpec, failures: &FailureSet) -> Self {
        let graph = filtered_graph(net, failures);
        let trees = graph.nodes().map(|n| ShortestPaths::dijkstra(&graph, n)).collect();
        Rib { trees, overrides: HashMap::new(), graph }
    }

    /// Convenience: converged tables with nothing failed.
    pub fn converged(net: &NetworkSpec) -> Self {
        Self::compute(net, &FailureSet::none())
    }

    /// Forces `from`'s next hop toward `dst` to be `via`, regardless of
    /// SPF. `via` must be a physical neighbour for the result to be
    /// resolvable. This models stale/inconsistent tables (§6.3).
    pub fn set_override(&mut self, from: RouterId, dst: RouterId, via: RouterId) {
        self.overrides.insert((from, dst), via);
    }

    /// Clears one override.
    pub fn clear_override(&mut self, from: RouterId, dst: RouterId) {
        self.overrides.remove(&(from, dst));
    }

    /// The next router on `from`'s path toward router `dst`.
    ///
    /// Returns `None` when `dst` is unreachable or `from == dst`.
    pub fn next_router(&self, from: RouterId, dst: RouterId) -> Option<RouterId> {
        if from == dst {
            return None;
        }
        if let Some(&via) = self.overrides.get(&(from, dst)) {
            return Some(via);
        }
        self.trees.get(dst.0 as usize)?.toward_root(NodeId(from.0)).map(|n| RouterId(n.0))
    }

    /// Distance (in routing metric) from `from` to router `dst`.
    pub fn dist(&self, from: RouterId, dst: RouterId) -> Option<u64> {
        self.trees.get(dst.0 as usize)?.dist(NodeId(from.0))
    }

    /// Resolves `from`'s route toward `dst_addr` to a concrete [`Hop`]:
    /// which interface, which next-hop address.
    ///
    /// `dst_addr` may be any address owned by a router (identity or
    /// interface) or by a host (the route then leads to the host's LAN).
    pub fn route(&self, net: &NetworkSpec, from: RouterId, dst_addr: Addr) -> Option<Hop> {
        let dst_router = match net.owner_of(dst_addr)? {
            cbt_topology::network::Owner::Router(r) => r,
            cbt_topology::network::Owner::Host(h) => {
                // Route to the first attached (lowest-addressed) live
                // router of the host's LAN.
                let lan = net.hosts[h.0 as usize].lan;
                *net.lans[lan.0 as usize].routers.first()?
            }
        };
        if dst_router == from {
            return None;
        }
        let next = self.next_router(from, dst_router)?;
        let dist = self.dist(from, dst_router)?;
        let (iface, addr) = resolve_adjacency(net, from, next)?;
        Some(Hop { iface, router: next, addr, dist })
    }

    /// The filtered router graph the tables were computed from.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// Finds the interface and next-hop address `from` uses to reach its
/// physical neighbour `next` (shared LAN or p2p link; lowest interface
/// index wins if several qualify).
fn resolve_adjacency(net: &NetworkSpec, from: RouterId, next: RouterId) -> Option<(IfIndex, Addr)> {
    let from_spec = &net.routers[from.0 as usize];
    for (idx, iface) in from_spec.ifaces.iter().enumerate() {
        match iface.attachment {
            Attachment::Link { peer, .. } if peer == next => {
                let peer_spec = &net.routers[next.0 as usize];
                let peer_iface = peer_spec.ifaces.iter().find(|pi| {
                    matches!(pi.attachment, Attachment::Link { peer: p, .. } if p == from)
                        && pi.subnet == iface.subnet
                })?;
                return Some((IfIndex(idx as u32), peer_iface.addr));
            }
            Attachment::Lan(lan) => {
                if let Some((_, peer_iface)) = lan_iface(net, next, lan) {
                    return Some((IfIndex(idx as u32), peer_iface));
                }
            }
            _ => {}
        }
    }
    None
}

fn lan_iface(net: &NetworkSpec, router: RouterId, lan: LanId) -> Option<(IfIndex, Addr)> {
    net.routers[router.0 as usize].iface_on_lan(lan).map(|(i, s)| (i, s.addr))
}

/// Builds the router graph with failed routers/links/LANs removed.
fn filtered_graph(net: &NetworkSpec, failures: &FailureSet) -> Graph {
    let mut g = Graph::with_nodes(net.routers.len());
    let up = |r: RouterId| !failures.router_down(r);
    for (j, l) in net.links.iter().enumerate() {
        if failures.link_down(cbt_topology::LinkId(j as u32)) || !up(l.a) || !up(l.b) {
            continue;
        }
        g.add_edge(NodeId(l.a.0), NodeId(l.b.0), l.cost);
    }
    for (k, lan) in net.lans.iter().enumerate() {
        if failures.lan_down(LanId(k as u32)) {
            continue;
        }
        for (i, &a) in lan.routers.iter().enumerate() {
            if !up(a) {
                continue;
            }
            for &b in &lan.routers[i + 1..] {
                if up(b) {
                    g.add_edge(NodeId(a.0), NodeId(b.0), 1);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::{figure1, NetworkBuilder};

    #[test]
    fn figure1_join_paths() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let r = |n: usize| f.router(n);
        // §2.5: R1 → R4 goes via R3.
        assert_eq!(rib.next_router(r(1), r(4)), Some(r(3)));
        assert_eq!(rib.next_router(r(3), r(4)), Some(r(4)));
        // §2.6: R6 → R4 goes via R2 (same-subnet next hop).
        assert_eq!(rib.next_router(r(6), r(4)), Some(r(2)));
        assert_eq!(rib.next_router(r(2), r(4)), Some(r(3)));
    }

    #[test]
    fn route_resolves_iface_and_addr() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let core_addr = f.net.router_addr(f.router(4));
        let hop = rib.route(&f.net, f.router(1), core_addr).unwrap();
        assert_eq!(hop.router, f.router(3));
        // The hop address is R3's address on the R1–R3 /30.
        let r3 = &f.net.routers[f.router(3).0 as usize];
        assert!(r3.ifaces.iter().any(|i| i.addr == hop.addr));
        assert_eq!(hop.dist, 2);
    }

    #[test]
    fn route_over_shared_lan_targets_peer_lan_address() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let hop = rib.route(&f.net, f.router(6), f.net.router_addr(f.router(4))).unwrap();
        assert_eq!(hop.router, f.router(2));
        let s4 = f.subnet(4);
        let (_, r2_on_s4) = f.net.routers[f.router(2).0 as usize].iface_on_lan(s4).unwrap();
        assert_eq!(hop.addr, r2_on_s4.addr, "next hop address is on the shared LAN");
    }

    #[test]
    fn self_route_is_none() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        assert_eq!(rib.next_router(f.router(4), f.router(4)), None);
        assert!(rib.route(&f.net, f.router(4), f.net.router_addr(f.router(4))).is_none());
    }

    #[test]
    fn link_failure_reroutes_or_disconnects() {
        // R0 —l0— R1 —l1— R2, plus spare path R0 —l2— R3 —l3— R2.
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        let l0 = b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        b.link(r0, r3, 1);
        b.link(r3, r2, 1);
        let net = b.build();

        let rib = Rib::converged(&net);
        assert_eq!(rib.next_router(r0, r2), Some(r1), "prefer via R1 (tie-break id)");

        let mut failures = FailureSet::none();
        failures.fail_link(l0);
        let rib = Rib::compute(&net, &failures);
        assert_eq!(rib.next_router(r0, r2), Some(r3), "reroute after failure");
        assert_eq!(rib.next_router(r0, r1), Some(r3), "R1 now two hops away");

        failures.fail_router(r3);
        let rib = Rib::compute(&net, &failures);
        assert_eq!(rib.next_router(r0, r2), None, "fully cut off");
    }

    #[test]
    fn lan_failure_disconnects_lan_only_paths() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let net = b.build();
        assert_eq!(Rib::converged(&net).next_router(r0, r1), Some(r1));
        let mut failures = FailureSet::none();
        failures.fail_lan(lan);
        assert_eq!(Rib::compute(&net, &failures).next_router(r0, r1), None);
    }

    #[test]
    fn overrides_shadow_spf() {
        let f = figure1();
        let mut rib = Rib::converged(&f.net);
        // Force R3 to (wrongly) believe R4 is reached via R1.
        rib.set_override(f.router(3), f.router(4), f.router(1));
        assert_eq!(rib.next_router(f.router(3), f.router(4)), Some(f.router(1)));
        rib.clear_override(f.router(3), f.router(4));
        assert_eq!(rib.next_router(f.router(3), f.router(4)), Some(f.router(4)));
    }

    #[test]
    fn route_to_host_address_reaches_its_lan() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        let host_g = f.net.host_addr(f.hosts.g); // on S10 behind R8
        let hop = rib.route(&f.net, f.router(4), host_g).unwrap();
        assert_eq!(hop.router, f.router(8));
    }

    #[test]
    fn unknown_address_routes_nowhere() {
        let f = figure1();
        let rib = Rib::converged(&f.net);
        assert!(rib.route(&f.net, f.router(1), Addr::from_octets(203, 0, 113, 1)).is_none());
    }
}
