//! Failure state applied on top of a [`cbt_topology::NetworkSpec`].

use cbt_topology::{LanId, LinkId, RouterId};
use std::collections::HashSet;

/// The set of currently failed elements.
///
/// A failed *router* stops forwarding and originating entirely; a
/// failed *link* or *LAN* carries no packets. The routing tables (and
/// the simulator's delivery) both consult the same `FailureSet`, so
/// control-plane knowledge and data-plane truth stay in sync exactly
/// the way a converged IGP would keep them.
#[derive(Debug, Clone, Default)]
pub struct FailureSet {
    routers: HashSet<RouterId>,
    links: HashSet<LinkId>,
    lans: HashSet<LanId>,
}

impl FailureSet {
    /// No failures.
    pub fn none() -> Self {
        FailureSet::default()
    }

    /// Marks a router down. Returns `true` if it was up before.
    pub fn fail_router(&mut self, r: RouterId) -> bool {
        self.routers.insert(r)
    }

    /// Marks a router up again.
    pub fn restore_router(&mut self, r: RouterId) -> bool {
        self.routers.remove(&r)
    }

    /// Marks a point-to-point link down.
    pub fn fail_link(&mut self, l: LinkId) -> bool {
        self.links.insert(l)
    }

    /// Restores a point-to-point link.
    pub fn restore_link(&mut self, l: LinkId) -> bool {
        self.links.remove(&l)
    }

    /// Marks a whole LAN segment down.
    pub fn fail_lan(&mut self, l: LanId) -> bool {
        self.lans.insert(l)
    }

    /// Restores a LAN segment.
    pub fn restore_lan(&mut self, l: LanId) -> bool {
        self.lans.remove(&l)
    }

    /// Is this router down?
    pub fn router_down(&self, r: RouterId) -> bool {
        self.routers.contains(&r)
    }

    /// Is this link down?
    pub fn link_down(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Is this LAN down?
    pub fn lan_down(&self, l: LanId) -> bool {
        self.lans.contains(&l)
    }

    /// True when nothing at all is failed.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty() && self.links.is_empty() && self.lans.is_empty()
    }

    /// The currently-failed routers, in unspecified order.
    pub fn failed_routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.routers.iter().copied()
    }

    /// The currently-failed links, in unspecified order.
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// The currently-failed LANs, in unspecified order.
    pub fn failed_lans(&self) -> impl Iterator<Item = LanId> + '_ {
        self.lans.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        assert!(f.fail_router(RouterId(3)));
        assert!(!f.fail_router(RouterId(3)), "double-fail is idempotent");
        assert!(f.router_down(RouterId(3)));
        assert!(!f.router_down(RouterId(4)));
        assert!(!f.is_empty());
        assert!(f.restore_router(RouterId(3)));
        assert!(f.is_empty());
    }

    #[test]
    fn links_and_lans_are_independent_namespaces() {
        let mut f = FailureSet::none();
        f.fail_link(LinkId(1));
        assert!(f.link_down(LinkId(1)));
        assert!(!f.lan_down(LanId(1)), "LanId(1) is not LinkId(1)");
        f.fail_lan(LanId(1));
        f.restore_link(LinkId(1));
        assert!(f.lan_down(LanId(1)));
    }
}
