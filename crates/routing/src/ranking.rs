//! Tunnel ranking (spec §5.2): running CBT in a virtual (tunnel)
//! topology *without* a multicast topology-discovery protocol.
//!
//! "Routing is replaced by 'ranking' each such tunnel interface
//! associated with a particular core address; if the highest-ranked
//! route is unavailable (tunnel end-points are required to run an
//! Hello-like protocol between themselves) then the next-highest ranked
//! available route is selected, and so on."
//!
//! The spec's worked example configures, per core, an ordered
//! backup-interface list; this module is that table plus the liveness
//! bookkeeping a Hello protocol would feed.

use cbt_topology::IfIndex;
use cbt_wire::Addr;
use std::collections::HashMap;

/// Liveness of one tunnel interface, as learned from Hellos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelState {
    /// Hellos flowing; usable.
    Up,
    /// Hello timeout; skip to the next-ranked interface.
    Down,
}

/// Per-core ranked tunnel interfaces with liveness, mirroring the §5.2
/// example tables (`core → backup-intfs`).
#[derive(Debug, Clone, Default)]
pub struct RankedTunnels {
    /// core address → interfaces in rank order (best first).
    ranks: HashMap<Addr, Vec<IfIndex>>,
    /// Current liveness; interfaces default to `Up` until a Hello
    /// timeout marks them down.
    state: HashMap<IfIndex, TunnelState>,
}

impl RankedTunnels {
    /// Empty table.
    pub fn new() -> Self {
        RankedTunnels::default()
    }

    /// Sets the full rank order for a core (best interface first),
    /// replacing any previous order.
    pub fn set_ranking(&mut self, core: Addr, ifaces: Vec<IfIndex>) {
        self.ranks.insert(core, ifaces);
    }

    /// Records a Hello result for an interface.
    pub fn set_state(&mut self, iface: IfIndex, state: TunnelState) {
        self.state.insert(iface, state);
    }

    /// Current liveness of an interface (default `Up`).
    pub fn state(&self, iface: IfIndex) -> TunnelState {
        self.state.get(&iface).copied().unwrap_or(TunnelState::Up)
    }

    /// The interface to use toward `core` right now: the highest-ranked
    /// interface whose tunnel is up. `None` if the core has no ranking
    /// or every ranked tunnel is down.
    pub fn select(&self, core: Addr) -> Option<IfIndex> {
        self.ranks.get(&core)?.iter().copied().find(|i| self.state(*i) == TunnelState::Up)
    }

    /// All configured interfaces for `core` in rank order.
    pub fn ranking(&self, core: Addr) -> Option<&[IfIndex]> {
        self.ranks.get(&core).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_a() -> Addr {
        Addr::from_octets(10, 255, 0, 4)
    }

    fn core_b() -> Addr {
        Addr::from_octets(10, 255, 0, 9)
    }

    /// Reproduces the spec's §5.2 worked example: core A ranks
    /// interfaces #5 then #2; with #5 down, #2 is chosen; with both
    /// down, nothing.
    #[test]
    fn spec_worked_example() {
        let mut t = RankedTunnels::new();
        t.set_ranking(core_a(), vec![IfIndex(5), IfIndex(2)]);
        t.set_ranking(core_b(), vec![IfIndex(3), IfIndex(5)]);

        assert_eq!(t.select(core_a()), Some(IfIndex(5)));
        t.set_state(IfIndex(5), TunnelState::Down);
        assert_eq!(t.select(core_a()), Some(IfIndex(2)), "falls back to #2");
        assert_eq!(t.select(core_b()), Some(IfIndex(3)), "core B unaffected");
        t.set_state(IfIndex(2), TunnelState::Down);
        assert_eq!(t.select(core_a()), None, "all tunnels to A down");
        t.set_state(IfIndex(5), TunnelState::Up);
        assert_eq!(t.select(core_a()), Some(IfIndex(5)), "recovery restores rank order");
    }

    #[test]
    fn unknown_core_selects_nothing() {
        let t = RankedTunnels::new();
        assert_eq!(t.select(core_a()), None);
        assert_eq!(t.ranking(core_a()), None);
    }

    #[test]
    fn interfaces_default_up() {
        let t = RankedTunnels::new();
        assert_eq!(t.state(IfIndex(9)), TunnelState::Up);
    }

    #[test]
    fn reranking_replaces_order() {
        let mut t = RankedTunnels::new();
        t.set_ranking(core_a(), vec![IfIndex(1), IfIndex(2)]);
        t.set_ranking(core_a(), vec![IfIndex(2), IfIndex(1)]);
        assert_eq!(t.select(core_a()), Some(IfIndex(2)));
        assert_eq!(t.ranking(core_a()).unwrap(), &[IfIndex(2), IfIndex(1)]);
    }
}
