//! Property tests on the routing substrate: converged tables are
//! loop-free and complete; failures only ever shrink reachability; the
//! resolved hops are physically adjacent.

use cbt_routing::{FailureSet, Rib};
use cbt_topology::{generate, Attachment, LanId, LinkId, NetworkSpec, RouterId};
use proptest::prelude::*;

fn spec_from(n: usize, seed: u64) -> NetworkSpec {
    let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
    NetworkSpec::from_graph_with_stub_lans(&g)
}

/// Walks next-hop pointers from `from` to `to`; returns hop count if it
/// terminates, `None` on unreachability.
fn walk(rib: &Rib, from: RouterId, to: RouterId, max: usize) -> Option<usize> {
    let mut cur = from;
    for hops in 0..max {
        if cur == to {
            return Some(hops);
        }
        cur = rib.next_router(cur, to)?;
    }
    panic!("routing loop: {from} -> {to} did not terminate in {max} hops");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Converged tables route every pair, loop-free, with path length
    /// equal to the SPF distance.
    #[test]
    fn converged_tables_are_loop_free_and_optimal(n in 2usize..40, seed in any::<u64>()) {
        let net = spec_from(n, seed);
        let rib = Rib::converged(&net);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (RouterId(i as u32), RouterId(j as u32));
                let hops = walk(&rib, a, b, n + 1).expect("connected graph routes everywhere");
                if i == j {
                    prop_assert_eq!(hops, 0);
                } else {
                    prop_assert_eq!(Some(hops as u64), rib.dist(a, b), "{} -> {}", a, b);
                }
            }
        }
    }

    /// After arbitrary link failures, every still-routable pair remains
    /// loop-free, and resolved hops are physically adjacent.
    #[test]
    fn failures_never_create_loops(
        n in 3usize..30,
        seed in any::<u64>(),
        kill in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let net = spec_from(n, seed);
        let mut failures = FailureSet::none();
        let link_count = net.links.len() as u32;
        for k in &kill {
            if link_count > 0 {
                failures.fail_link(LinkId(k % link_count));
            }
        }
        let rib = Rib::compute(&net, &failures);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (RouterId(i as u32), RouterId(j as u32));
                // walk() panics on loops; unreachability is acceptable.
                let _ = walk(&rib, a, b, n + 1);
                // Any resolved hop must be a physical neighbour over a
                // *live* medium.
                if a != b {
                    if let Some(hop) = rib.route(&net, a, net.router_addr(b)) {
                        let iface = net.routers[a.0 as usize].iface(hop.iface).expect("iface");
                        match iface.attachment {
                            Attachment::Link { link, peer } => {
                                prop_assert!(!failures.link_down(link), "hop over dead link");
                                prop_assert_eq!(peer, hop.router);
                            }
                            Attachment::Lan(lan) => {
                                prop_assert!(!failures.lan_down(lan));
                                prop_assert!(
                                    net.lans[lan.0 as usize].routers.contains(&hop.router)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Incrementally applying a random flap schedule one batch at a
    /// time yields exactly the same next hops and distances as
    /// computing a fresh RIB from scratch against the final failure
    /// set — across links, LANs, and router flaps in any order.
    #[test]
    fn incremental_apply_matches_from_scratch(
        n in 3usize..25,
        seed in any::<u64>(),
        schedule in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..12),
    ) {
        let net = spec_from(n, seed);
        let mut rib = Rib::converged(&net);
        // Warm a few trees so repairs actually have work to do.
        for d in 0..n.min(6) {
            let _ = rib.dist(RouterId(0), RouterId(d as u32));
        }
        let mut failures = FailureSet::none();
        let link_count = net.links.len() as u32;
        let lan_count = net.lans.len() as u32;
        for (kind, pick) in &schedule {
            match kind % 3 {
                0 if link_count > 0 => {
                    let l = LinkId(pick % link_count);
                    if failures.link_down(l) {
                        failures.restore_link(l);
                    } else {
                        failures.fail_link(l);
                    }
                }
                1 if lan_count > 0 => {
                    let l = LanId(pick % lan_count);
                    if failures.lan_down(l) {
                        failures.restore_lan(l);
                    } else {
                        failures.fail_lan(l);
                    }
                }
                _ => {
                    let r = RouterId(pick % n as u32);
                    if failures.router_down(r) {
                        failures.restore_router(r);
                    } else {
                        failures.fail_router(r);
                    }
                }
            }
            rib.apply_failures(&failures);
        }
        let fresh = Rib::compute(&net, &failures);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (RouterId(i as u32), RouterId(j as u32));
                prop_assert_eq!(
                    rib.next_router(a, b),
                    fresh.next_router(a, b),
                    "next hop {} -> {}", a, b
                );
                prop_assert_eq!(rib.dist(a, b), fresh.dist(a, b), "dist {} -> {}", a, b);
            }
        }
    }
}
