//! # cbt-netsim — deterministic discrete-event network simulator
//!
//! The substrate every experiment runs on. It owns:
//!
//! * **virtual time** ([`time`]) — microsecond-resolution [`SimTime`],
//!   no wall clock anywhere;
//! * a **stable event queue** ([`queue`]) — ties broken by insertion
//!   sequence so identical seeds replay identically;
//! * the **world** ([`world`]) — instantiates a
//!   [`cbt_topology::NetworkSpec`], hosts one [`node::SimNode`]
//!   behaviour per router/host, moves whole IP datagrams between them
//!   over LANs and point-to-point links with per-hop latency, and
//!   honours the shared [`cbt_routing::FailureSet`];
//! * **fault injection** ([`fault`]) — seeded probabilistic drop and
//!   byte corruption, smoltcp-style;
//! * a **trace** ([`trace`]) — every transmission classified by
//!   protocol (CBT control type, IGMP type, native/CBT-mode data) with
//!   counters; this is the raw material for the control-overhead and
//!   traffic-concentration experiments.
//!
//! The simulator knows nothing about the CBT protocol itself: protocol
//! engines are plugged in as [`node::SimNode`] trait objects. The same
//! engine code also runs under tokio in `cbt-node`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod node;
pub mod pcap;
pub mod queue;
pub mod time;
pub mod trace;
pub mod world;

pub use bytes::Bytes;
pub use fault::{FaultClass, FaultPlan};
pub use node::{Entity, Outbox, SimNode, Transmit};
pub use pcap::Capture;
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
pub use trace::{Medium, PacketKind, Trace, TraceEntry};
pub use world::{World, WorldConfig};
