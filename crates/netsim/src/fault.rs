//! Seeded fault injection, smoltcp-style: probabilistic packet drop and
//! single-byte corruption applied to transmissions in flight.
//!
//! Corruption flips exactly one random bit of one random byte — the
//! adversary the Internet checksum is designed for; the wire crate's
//! property tests guarantee such packets never parse, so the protocol
//! sees corruption as loss (exactly what a real router does).
//!
//! # Stream isolation
//!
//! Every (decision, traffic-class) pair draws from its **own** seeded
//! RNG stream: control drops, data drops, control corruption and data
//! corruption are four independent ChaCha8 sequences derived from the
//! one world seed. The fate of the nth control frame therefore depends
//! only on n and the seed — adding data-plane traffic to a scenario
//! can never perturb a control-plane fault replay. The exploration
//! harness leans on this: a counterexample's targeted drops stay
//! pinned to the same control transmissions no matter what background
//! load the replay adds.

use bytes::Bytes;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Traffic class a frame belongs to, from the injector's point of
/// view. Classification is done by the world (which already parses
/// every transmission for its trace): CBT control and IGMP frames are
/// [`FaultClass::Control`], everything else is [`FaultClass::Data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum FaultClass {
    /// CBT control messages and IGMP.
    Control = 0,
    /// Multicast data (native or CBT-mode) and anything unclassified.
    Data = 1,
}

impl FaultClass {
    /// Number of classes (array sizing).
    pub const COUNT: usize = 2;
}

/// Fault injection plan: probabilistic rates plus targeted drops.
///
/// Targeted drops name exact per-class transmission sequence numbers
/// (0-based, counted separately for control and data): the nth control
/// frame the injector sees is dropped iff `n` is listed in
/// [`FaultPlan::drop_control_seqs`]. Because each class keeps its own
/// counter, a targeted control drop is a deterministic, load-immune
/// fault — the unit the exploration harness enumerates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability that any transmission is silently dropped.
    pub drop_chance: f64,
    /// Probability that a surviving transmission has one bit flipped.
    pub corrupt_chance: f64,
    /// Control-class sequence numbers to drop deterministically.
    pub drop_control_seqs: Vec<u64>,
    /// Data-class sequence numbers to drop deterministically.
    pub drop_data_seqs: Vec<u64>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform drop probability, no corruption.
    pub fn drops(p: f64) -> Self {
        FaultPlan { drop_chance: p, ..FaultPlan::default() }
    }

    /// Uniform corruption probability, no drops.
    pub fn corruption(p: f64) -> Self {
        FaultPlan { corrupt_chance: p, ..FaultPlan::default() }
    }

    /// Adds targeted control-frame drops (per-class sequence numbers).
    pub fn with_control_drops(mut self, seqs: impl Into<Vec<u64>>) -> Self {
        self.drop_control_seqs = seqs.into();
        self
    }

    /// Adds targeted data-frame drops (per-class sequence numbers).
    pub fn with_data_drops(mut self, seqs: impl Into<Vec<u64>>) -> Self {
        self.drop_data_seqs = seqs.into();
        self
    }

    fn targets(&self, class: FaultClass) -> &[u64] {
        match class {
            FaultClass::Control => &self.drop_control_seqs,
            FaultClass::Data => &self.drop_data_seqs,
        }
    }
}

/// Per-(decision, class) seed derivation constants. Any four distinct
/// odd constants would do; these are splitmix64/xxhash multipliers.
const STREAM_SALTS: [[u64; FaultClass::COUNT]; 2] = [
    // drop: control, data
    [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F],
    // corrupt: control, data
    [0x1656_67B1_9E37_79F9, 0x27D4_EB2F_1656_67C5],
];

/// Stateful injector: owns its RNG streams so a fixed seed reproduces
/// the same fault pattern run after run.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    drop_rng: [ChaCha8Rng; FaultClass::COUNT],
    corrupt_rng: [ChaCha8Rng; FaultClass::COUNT],
    /// Per-class transmission counters (targeted drops index these).
    seq: [u64; FaultClass::COUNT],
    dropped: u64,
    corrupted: u64,
    passed: u64,
}

impl FaultInjector {
    /// New injector with the given plan and seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let stream = |decision: usize, class: usize| {
            ChaCha8Rng::seed_from_u64(seed.wrapping_add(STREAM_SALTS[decision][class]))
        };
        FaultInjector {
            plan,
            drop_rng: [stream(0, 0), stream(0, 1)],
            corrupt_rng: [stream(1, 0), stream(1, 1)],
            seq: [0; FaultClass::COUNT],
            dropped: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// Applies the plan to a frame in flight. Returns `None` if the
    /// frame is dropped, otherwise the (possibly corrupted) frame.
    ///
    /// The clean path is zero-copy: the refcounted frame passes through
    /// untouched. Corruption is copy-on-write — the injector clones the
    /// payload into a fresh allocation before flipping its bit, so
    /// other receivers of the same broadcast still see the original.
    pub fn apply(&mut self, class: FaultClass, frame: Bytes) -> Option<Bytes> {
        let c = class as usize;
        let seq = self.seq[c];
        self.seq[c] += 1;
        if self.plan.targets(class).contains(&seq) {
            self.dropped += 1;
            return None;
        }
        if self.plan.drop_chance > 0.0 && self.drop_rng[c].gen::<f64>() < self.plan.drop_chance {
            self.dropped += 1;
            return None;
        }
        if self.plan.corrupt_chance > 0.0
            && !frame.is_empty()
            && self.corrupt_rng[c].gen::<f64>() < self.plan.corrupt_chance
        {
            let mut owned = frame.to_vec();
            let byte = self.corrupt_rng[c].gen_range(0..owned.len());
            let bit = self.corrupt_rng[c].gen_range(0..8u8);
            owned[byte] ^= 1 << bit;
            self.corrupted += 1;
            return Some(Bytes::from(owned));
        }
        self.passed += 1;
        Some(frame)
    }

    /// Replaces the plan mid-flight, keeping RNG streams, per-class
    /// sequence counters and statistics. A harness that heals the
    /// network with `set_plan(FaultPlan::none())` therefore still
    /// reports the storm's cumulative drop/corruption counts, and
    /// targeted sequence numbers keep counting from where they were.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// (passed clean, corrupted, dropped) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.passed, self.corrupted, self.dropped)
    }

    /// How many frames of `class` have passed through so far (the next
    /// frame of that class gets this sequence number).
    pub fn seq(&self, class: FaultClass) -> u64 {
        self.seq[class as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_passes_everything_untouched() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 1);
        for i in 0..100u8 {
            let frame = Bytes::from(vec![i; 16]);
            assert_eq!(inj.apply(FaultClass::Data, frame.clone()), Some(frame));
        }
        assert_eq!(inj.stats(), (100, 0, 0));
    }

    #[test]
    fn clean_pass_shares_the_allocation() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 1);
        let frame = Bytes::from(vec![7u8; 64]);
        let out = inj.apply(FaultClass::Control, frame.clone()).unwrap();
        assert!(out.shares_allocation_with(&frame), "clean path must be zero-copy");
    }

    #[test]
    fn full_drop_drops_everything() {
        let mut inj = FaultInjector::new(FaultPlan::drops(1.0), 1);
        for _ in 0..50 {
            assert_eq!(inj.apply(FaultClass::Data, Bytes::from(vec![0; 8])), None);
        }
        assert_eq!(inj.stats(), (0, 0, 50));
    }

    #[test]
    fn full_corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 7);
        for _ in 0..50 {
            let original = Bytes::from(vec![0u8; 32]);
            let out = inj.apply(FaultClass::Data, original.clone()).unwrap();
            let flipped: u32 = out.iter().zip(&original).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(flipped, 1);
        }
    }

    #[test]
    fn corruption_is_copy_on_write() {
        // Two receivers of one broadcast share the allocation; when the
        // injector corrupts one copy, the other must see the original.
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 9);
        let original = Bytes::from(vec![0u8; 32]);
        let other_receiver = original.clone();
        let corrupted = inj.apply(FaultClass::Data, original.clone()).unwrap();
        assert!(!corrupted.shares_allocation_with(&original), "corruption must not alias");
        assert_eq!(other_receiver, original, "peer's copy untouched");
        assert_ne!(corrupted, original);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::drops(0.3), 42);
        let n = 10_000;
        let mut dropped = 0;
        for _ in 0..n {
            if inj.apply(FaultClass::Data, Bytes::from(vec![0; 4])).is_none() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn same_seed_same_fate() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                FaultPlan { drop_chance: 0.2, corrupt_chance: 0.2, ..FaultPlan::default() },
                seed,
            );
            (0..200)
                .map(|i| inj.apply(FaultClass::Control, Bytes::from(vec![i as u8; 12])))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 1);
        assert_eq!(inj.apply(FaultClass::Data, Bytes::new()), Some(Bytes::new()));
    }

    #[test]
    fn targeted_drop_hits_exact_sequence_numbers() {
        let plan = FaultPlan::none().with_control_drops(vec![0, 3]);
        let mut inj = FaultInjector::new(plan, 11);
        let fates: Vec<bool> = (0..6)
            .map(|_| inj.apply(FaultClass::Control, Bytes::from(vec![1u8; 4])).is_some())
            .collect();
        assert_eq!(fates, vec![false, true, true, false, true, true]);
        // Data frames keep their own counter: none of them are hit.
        for _ in 0..6 {
            assert!(inj.apply(FaultClass::Data, Bytes::from(vec![2u8; 4])).is_some());
        }
        assert_eq!(inj.stats(), (10, 0, 2));
    }

    /// The satellite-3 contract at the injector level: interleaving
    /// any amount of data traffic between control frames must not
    /// change which control frames drop.
    #[test]
    fn control_fates_are_immune_to_data_interleaving() {
        let plan = FaultPlan { drop_chance: 0.3, corrupt_chance: 0.2, ..FaultPlan::default() };
        let control_fates = |data_between: usize| {
            let mut inj = FaultInjector::new(plan.clone(), 77);
            let mut fates = Vec::new();
            for i in 0..100u8 {
                for _ in 0..data_between {
                    let _ = inj.apply(FaultClass::Data, Bytes::from(vec![0xDD; 20]));
                }
                fates.push(inj.apply(FaultClass::Control, Bytes::from(vec![i; 12])));
            }
            fates
        };
        let quiet = control_fates(0);
        assert_eq!(quiet, control_fates(1));
        assert_eq!(quiet, control_fates(7));
    }
}
