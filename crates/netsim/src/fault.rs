//! Seeded fault injection, smoltcp-style: probabilistic packet drop and
//! single-byte corruption applied to transmissions in flight.
//!
//! Corruption flips exactly one random bit of one random byte — the
//! adversary the Internet checksum is designed for; the wire crate's
//! property tests guarantee such packets never parse, so the protocol
//! sees corruption as loss (exactly what a real router does).

use bytes::Bytes;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Probabilities for the fault injector, in [0, 1].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Probability that any transmission is silently dropped.
    pub drop_chance: f64,
    /// Probability that a surviving transmission has one bit flipped.
    pub corrupt_chance: f64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform drop probability, no corruption.
    pub fn drops(p: f64) -> Self {
        FaultPlan { drop_chance: p, corrupt_chance: 0.0 }
    }

    /// Uniform corruption probability, no drops.
    pub fn corruption(p: f64) -> Self {
        FaultPlan { drop_chance: 0.0, corrupt_chance: p }
    }
}

/// Stateful injector: owns its RNG so a fixed seed reproduces the same
/// fault pattern run after run.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    dropped: u64,
    corrupted: u64,
    passed: u64,
}

impl FaultInjector {
    /// New injector with the given plan and seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: ChaCha8Rng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// Applies the plan to a frame in flight. Returns `None` if the
    /// frame is dropped, otherwise the (possibly corrupted) frame.
    ///
    /// The clean path is zero-copy: the refcounted frame passes through
    /// untouched. Corruption is copy-on-write — the injector clones the
    /// payload into a fresh allocation before flipping its bit, so
    /// other receivers of the same broadcast still see the original.
    pub fn apply(&mut self, frame: Bytes) -> Option<Bytes> {
        if self.plan.drop_chance > 0.0 && self.rng.gen::<f64>() < self.plan.drop_chance {
            self.dropped += 1;
            return None;
        }
        if self.plan.corrupt_chance > 0.0
            && !frame.is_empty()
            && self.rng.gen::<f64>() < self.plan.corrupt_chance
        {
            let mut owned = frame.to_vec();
            let byte = self.rng.gen_range(0..owned.len());
            let bit = self.rng.gen_range(0..8u8);
            owned[byte] ^= 1 << bit;
            self.corrupted += 1;
            return Some(Bytes::from(owned));
        }
        self.passed += 1;
        Some(frame)
    }

    /// (passed clean, corrupted, dropped) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.passed, self.corrupted, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_passes_everything_untouched() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 1);
        for i in 0..100u8 {
            let frame = Bytes::from(vec![i; 16]);
            assert_eq!(inj.apply(frame.clone()), Some(frame));
        }
        assert_eq!(inj.stats(), (100, 0, 0));
    }

    #[test]
    fn clean_pass_shares_the_allocation() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 1);
        let frame = Bytes::from(vec![7u8; 64]);
        let out = inj.apply(frame.clone()).unwrap();
        assert!(out.shares_allocation_with(&frame), "clean path must be zero-copy");
    }

    #[test]
    fn full_drop_drops_everything() {
        let mut inj = FaultInjector::new(FaultPlan::drops(1.0), 1);
        for _ in 0..50 {
            assert_eq!(inj.apply(Bytes::from(vec![0; 8])), None);
        }
        assert_eq!(inj.stats(), (0, 0, 50));
    }

    #[test]
    fn full_corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 7);
        for _ in 0..50 {
            let original = Bytes::from(vec![0u8; 32]);
            let out = inj.apply(original.clone()).unwrap();
            let flipped: u32 = out.iter().zip(&original).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(flipped, 1);
        }
    }

    #[test]
    fn corruption_is_copy_on_write() {
        // Two receivers of one broadcast share the allocation; when the
        // injector corrupts one copy, the other must see the original.
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 9);
        let original = Bytes::from(vec![0u8; 32]);
        let other_receiver = original.clone();
        let corrupted = inj.apply(original.clone()).unwrap();
        assert!(!corrupted.shares_allocation_with(&original), "corruption must not alias");
        assert_eq!(other_receiver, original, "peer's copy untouched");
        assert_ne!(corrupted, original);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::drops(0.3), 42);
        let n = 10_000;
        let mut dropped = 0;
        for _ in 0..n {
            if inj.apply(Bytes::from(vec![0; 4])).is_none() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn same_seed_same_fate() {
        let run = |seed| {
            let mut inj =
                FaultInjector::new(FaultPlan { drop_chance: 0.2, corrupt_chance: 0.2 }, seed);
            (0..200).map(|i| inj.apply(Bytes::from(vec![i as u8; 12]))).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let mut inj = FaultInjector::new(FaultPlan::corruption(1.0), 1);
        assert_eq!(inj.apply(Bytes::new()), Some(Bytes::new()));
    }
}
