//! Virtual time: microsecond ticks since simulation start.
//!
//! The spec's §9 timers are seconds-granularity; data-plane latencies
//! are sub-millisecond. Microseconds cover both with integer exactness
//! (no floating-point drift across platforms).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Constructs from raw microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Time as fractional seconds (for display/metrics only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds (the unit of every §9 default timer).
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scales the duration by an integer factor.
    pub const fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.micros(), 2_500_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(1_500));
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(5), SimDuration::ZERO, "saturates");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO < SimTime::from_secs(1));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(90).micros(), 90_000_000);
        assert_eq!(SimDuration::from_secs(3).times(2), SimDuration::from_secs(6));
        assert!((SimTime::from_millis_for_tests(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    impl SimTime {
        fn from_millis_for_tests(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(30);
        assert_eq!(t, SimTime::from_secs(30));
    }
}
