//! The world: a [`NetworkSpec`] instantiated with live node behaviours,
//! an event queue, latencies, failures and fault injection.
//!
//! # Hot-path design
//!
//! The dispatch loop is the simulator's inner loop, so three costs are
//! engineered out of it:
//!
//! - **Frames are [`Bytes`]**: refcounted, immutable. LAN fan-out to N
//!   receivers clones the handle N times (a pointer bump each), never
//!   the payload. Corruption by the fault injector is copy-on-write.
//! - **Node lookup is a dense `Vec` index**, not a `HashMap` probe.
//!   Entities map to slots as routers-then-hosts; each slot carries its
//!   node and its wake generation side by side.
//! - **Delivery is precomputed**. `World::new` resolves, once, every
//!   LAN's receiver list (entity, rx interface, rx address) and every
//!   router interface's medium (LAN with hoisted source address, or
//!   link with peer + peer interface). `emit` then walks flat slices
//!   instead of cloning `LanSpec`s and re-resolving `iface_on_lan` per
//!   transmission.

use crate::fault::{FaultClass, FaultInjector, FaultPlan};
use crate::node::{Entity, Outbox, SimNode};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Medium, PacketKind, Trace};
use bytes::Bytes;
use cbt_routing::FailureSet;
use cbt_topology::{Attachment, HostId, IfIndex, LanId, LinkId, NetworkSpec, RouterId};

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Propagation + processing delay across a point-to-point link.
    pub link_latency: SimDuration,
    /// Delay across a LAN segment.
    pub lan_latency: SimDuration,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Seed for the fault injector (the only randomness in the world).
    pub seed: u64,
    /// Record full trace entries (`true`) or counters only (`false`).
    pub record_trace: bool,
    /// Also capture every transmitted frame for pcap export
    /// ([`World::capture`]). Off by default — captures grow quickly.
    pub capture_pcap: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            link_latency: SimDuration::from_millis(1),
            lan_latency: SimDuration::from_micros(200),
            fault: FaultPlan::none(),
            seed: 0,
            record_trace: true,
            capture_pcap: false,
        }
    }
}

enum Event {
    Arrive { to: Entity, iface: IfIndex, link_src: cbt_wire::Addr, frame: Bytes },
    Wake { who: Entity, generation: u64 },
}

/// One entity's state: its behaviour (if installed) and the generation
/// counter that invalidates stale queued wakeups.
struct Slot {
    node: Option<Box<dyn SimNode>>,
    wake_generation: u64,
    /// The instant of this slot's currently queued wake event, if any.
    /// Kept so an unchanged wakeup is NOT re-pushed: re-pushing would
    /// re-key the event by insertion order and same-instant tie-breaks
    /// would start depending on unrelated traffic.
    scheduled_wake: Option<SimTime>,
}

/// One attachment on a LAN, resolved at construction: who receives, on
/// which interface, at which link-layer address.
struct LanReceiver {
    entity: Entity,
    iface: IfIndex,
    addr: cbt_wire::Addr,
}

/// What a router interface transmits onto, resolved at construction.
/// `src_addr` is the interface's own address — the link-layer source
/// every delivery from this interface carries.
#[derive(Clone, Copy)]
enum IfacePlan {
    Lan { lan: LanId, src_addr: cbt_wire::Addr },
    Link { link: LinkId, peer: RouterId, peer_iface: Option<IfIndex>, src_addr: cbt_wire::Addr },
}

/// The discrete-event world.
///
/// Construct with a network, plug in one [`SimNode`] per router/host
/// (entities without a node simply ignore traffic), call
/// [`World::start`], then drive time with [`World::run_until`] /
/// [`World::run_until_idle`].
pub struct World {
    spec: NetworkSpec,
    failures: FailureSet,
    cfg: WorldConfig,
    now: SimTime,
    queue: EventQueue<Event>,
    /// Dense node table: routers at `[0, num_routers)`, hosts after.
    slots: Vec<Slot>,
    num_routers: usize,
    /// Indexed by `LanId`: everyone attached to that LAN.
    lan_plans: Vec<Vec<LanReceiver>>,
    /// Indexed by `RouterId`, then `IfIndex`.
    iface_plans: Vec<Vec<IfacePlan>>,
    /// Indexed by `HostId`: (its LAN, its address).
    host_plans: Vec<(LanId, cbt_wire::Addr)>,
    injector: FaultInjector,
    trace: Trace,
    capture: Option<crate::pcap::Capture>,
}

impl World {
    /// Creates a world over `spec` with the given config.
    pub fn new(spec: NetworkSpec, cfg: WorldConfig) -> Self {
        let num_routers = spec.routers.len();
        let slots = (0..num_routers + spec.hosts.len())
            .map(|_| Slot { node: None, wake_generation: 0, scheduled_wake: None })
            .collect();

        let iface_plans = spec
            .routers
            .iter()
            .map(|r| {
                r.ifaces
                    .iter()
                    .map(|ifspec| match ifspec.attachment {
                        Attachment::Lan(lan) => IfacePlan::Lan { lan, src_addr: ifspec.addr },
                        Attachment::Link { link, peer } => {
                            let peer_iface = spec.routers[peer.0 as usize]
                                .ifaces
                                .iter()
                                .position(|pi| {
                                    matches!(pi.attachment,
                                        Attachment::Link { link: l, .. } if l == link)
                                })
                                .map(|p| IfIndex(p as u32));
                            IfacePlan::Link { link, peer, peer_iface, src_addr: ifspec.addr }
                        }
                    })
                    .collect()
            })
            .collect();

        let lan_plans = spec
            .lans
            .iter()
            .enumerate()
            .map(|(li, lan)| {
                let lan_id = LanId(li as u32);
                let mut receivers = Vec::with_capacity(lan.routers.len() + lan.hosts.len());
                for &r in &lan.routers {
                    if let Some((rx_iface, rx_spec)) =
                        spec.routers[r.0 as usize].iface_on_lan(lan_id)
                    {
                        receivers.push(LanReceiver {
                            entity: Entity::Router(r),
                            iface: rx_iface,
                            addr: rx_spec.addr,
                        });
                    }
                }
                for &h in &lan.hosts {
                    receivers.push(LanReceiver {
                        entity: Entity::Host(h),
                        iface: IfIndex(0),
                        addr: spec.hosts[h.0 as usize].addr,
                    });
                }
                receivers
            })
            .collect();

        let host_plans = spec.hosts.iter().map(|h| (h.lan, h.addr)).collect();

        World {
            failures: FailureSet::none(),
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            slots,
            num_routers,
            lan_plans,
            iface_plans,
            host_plans,
            injector: FaultInjector::new(cfg.fault.clone(), cfg.seed),
            trace: if cfg.record_trace { Trace::recording() } else { Trace::counters_only() },
            capture: cfg.capture_pcap.then(crate::pcap::Capture::new),
            cfg,
            spec,
        }
    }

    /// The network this world instantiates.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The transmission trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The pcap frame capture, when `capture_pcap` was enabled.
    pub fn capture(&self) -> Option<&crate::pcap::Capture> {
        self.capture.as_ref()
    }

    /// Fault-injector counters: (passed clean, corrupted, dropped).
    pub fn fault_stats(&self) -> (u64, u64, u64) {
        self.injector.stats()
    }

    /// Replaces the fault plan mid-run (e.g. to end a chaos phase and
    /// observe recovery). The injector keeps its RNG streams, sequence
    /// counters and statistics — only the plan changes, so cumulative
    /// [`World::fault_stats`] stay truthful across the swap and
    /// targeted per-sequence drops keep their frame of reference.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector.set_plan(plan);
    }

    /// Current failure state (shared with routing recomputation done by
    /// the harness).
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Mutates the failure state. The harness is responsible for also
    /// recomputing whatever routing tables its nodes share.
    pub fn failures_mut(&mut self) -> &mut FailureSet {
        &mut self.failures
    }

    /// Dense slot index: routers first, hosts after.
    fn idx(&self, e: Entity) -> usize {
        match e {
            Entity::Router(r) => r.0 as usize,
            Entity::Host(h) => self.num_routers + h.0 as usize,
        }
    }

    /// Inverse of [`World::idx`].
    fn entity_at(&self, i: usize) -> Entity {
        if i < self.num_routers {
            Entity::Router(RouterId(i as u32))
        } else {
            Entity::Host(HostId((i - self.num_routers) as u32))
        }
    }

    /// Installs the behaviour for an entity, replacing any previous one
    /// (that is how router *restarts* are modelled: a fresh engine with
    /// empty state, per §6.2).
    ///
    /// # Panics
    ///
    /// If `entity` is not part of this world's [`NetworkSpec`].
    pub fn set_node(&mut self, entity: Entity, node: Box<dyn SimNode>) {
        let i = self.idx(entity);
        assert!(i < self.slots.len(), "set_node: {entity} is not in the network spec");
        self.slots[i].node = Some(node);
        self.reschedule_wake(entity);
    }

    /// Typed access to a node for harness-level commands (e.g. telling
    /// a host application to join a group). Follow mutations that need
    /// to send packets with [`World::poke`].
    pub fn node_mut<N: SimNode + 'static>(&mut self, entity: Entity) -> Option<&mut N> {
        let i = self.idx(entity);
        self.slots.get_mut(i)?.node.as_deref_mut()?.as_any_mut().downcast_mut::<N>()
    }

    /// Immutable typed access to a node — inspection without exclusive
    /// access to the world.
    pub fn node<N: SimNode + 'static>(&self, entity: Entity) -> Option<&N> {
        let i = self.idx(entity);
        self.slots.get(i)?.node.as_deref()?.as_any().downcast_ref::<N>()
    }

    /// Invokes `on_timer` on an entity *now* — used right after a
    /// harness-level mutation so the node can act on it.
    pub fn poke(&mut self, entity: Entity) {
        if self.entity_down(entity) {
            return;
        }
        let mut out = Outbox::new();
        let now = self.now;
        let i = self.idx(entity);
        if let Some(slot) = self.slots.get_mut(i) {
            if let Some(node) = slot.node.as_deref_mut() {
                node.on_timer(now, &mut out);
            }
        }
        self.emit(entity, out);
        self.reschedule_wake(entity);
    }

    /// Schedules the initial wakeups of every installed node. Call once
    /// after all nodes are installed.
    pub fn start(&mut self) {
        // Slot order is routers-then-hosts ascending — the same total
        // order `Entity` derives, so startup stays deterministic.
        for i in 0..self.slots.len() {
            if self.slots[i].node.is_some() {
                self.poke(self.entity_at(i));
            }
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else { return false };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match event {
            Event::Arrive { to, iface, link_src, frame } => {
                if self.entity_down(to) {
                    return true;
                }
                let mut out = Outbox::new();
                let i = self.idx(to);
                if let Some(node) = self.slots[i].node.as_deref_mut() {
                    node.on_packet(at, iface, link_src, &frame, &mut out);
                }
                self.emit(to, out);
                self.reschedule_wake(to);
            }
            Event::Wake { who, generation } => {
                let i = self.idx(who);
                if self.slots[i].wake_generation != generation {
                    return true; // stale wake
                }
                // The live generation's queued event is consumed either
                // way; forget it so the next reschedule pushes afresh.
                self.slots[i].scheduled_wake = None;
                if self.entity_down(who) {
                    return true;
                }
                let mut out = Outbox::new();
                if let Some(node) = self.slots[i].node.as_deref_mut() {
                    node.on_timer(at, &mut out);
                }
                self.emit(who, out);
                self.reschedule_wake(who);
            }
        }
        true
    }

    /// Runs until simulated time reaches `deadline` (events after it
    /// stay queued; `now` advances to the deadline).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain or `deadline` passes, whichever is
    /// first. Returns `true` if the world went idle.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                self.now = deadline;
                return false;
            }
            self.step();
        }
        true
    }

    fn entity_down(&self, e: Entity) -> bool {
        match e {
            Entity::Router(r) => self.failures.router_down(r),
            Entity::Host(_) => false,
        }
    }

    /// Dispatches everything a node queued, via the precomputed plans.
    fn emit(&mut self, from: Entity, mut out: Outbox) {
        for t in out.drain() {
            match from {
                Entity::Router(r) => {
                    let Some(plan) = self
                        .iface_plans
                        .get(r.0 as usize)
                        .and_then(|p| p.get(t.iface.0 as usize))
                        .copied()
                    else {
                        // Unknown interface: the world has no plan to
                        // carry this frame anywhere.
                        self.trace.record_drop(cbt_obs::DropReason::NoFibEntry);
                        continue;
                    };
                    match plan {
                        IfacePlan::Lan { lan, src_addr } => {
                            self.emit_lan(from, t.iface, lan, src_addr, t.link_dst, t.frame);
                        }
                        IfacePlan::Link { link, peer, peer_iface, src_addr } => {
                            self.emit_link(
                                from, t.iface, link, peer, peer_iface, src_addr, t.frame,
                            );
                        }
                    }
                }
                Entity::Host(h) => {
                    if t.iface != IfIndex(0) {
                        self.trace.record_drop(cbt_obs::DropReason::NoFibEntry);
                        continue;
                    }
                    let Some(&(lan, src_addr)) = self.host_plans.get(h.0 as usize) else {
                        self.trace.record_drop(cbt_obs::DropReason::NoFibEntry);
                        continue;
                    };
                    self.emit_lan(from, t.iface, lan, src_addr, t.link_dst, t.frame);
                }
            }
        }
    }

    fn emit_lan(
        &mut self,
        from: Entity,
        iface: IfIndex,
        lan: LanId,
        link_src: cbt_wire::Addr,
        link_dst: Option<cbt_wire::Addr>,
        frame: Bytes,
    ) {
        if self.failures.lan_down(lan) {
            return;
        }
        let kind = PacketKind::classify(&frame);
        self.trace.record_tx(self.now, from, iface, Medium::Lan(lan), kind, frame.len());
        if let Some(cap) = &mut self.capture {
            cap.record(self.now, frame.clone());
        }
        let class = if kind.is_control() { FaultClass::Control } else { FaultClass::Data };
        let Some(frame) = self.injector.apply(class, frame) else { return };
        let arrive_at = self.now + self.cfg.lan_latency;
        for rx in &self.lan_plans[lan.0 as usize] {
            if rx.entity == from {
                continue;
            }
            if let Entity::Router(r) = rx.entity {
                if self.failures.router_down(r) {
                    continue;
                }
            }
            // Link-layer filter: a framed unicast only reaches its
            // addressee.
            if link_dst.is_some_and(|d| d != rx.addr) {
                continue;
            }
            self.queue.push(
                arrive_at,
                Event::Arrive {
                    to: rx.entity,
                    iface: rx.iface,
                    link_src,
                    frame: frame.clone(), // refcount bump, not a copy
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_link(
        &mut self,
        from: Entity,
        iface: IfIndex,
        link: LinkId,
        peer: RouterId,
        peer_iface: Option<IfIndex>,
        src_addr: cbt_wire::Addr,
        frame: Bytes,
    ) {
        // Record the attempt (bytes hit the wire) even when the link or
        // peer is down and nothing arrives.
        let kind = PacketKind::classify(&frame);
        self.trace.record_tx(self.now, from, iface, Medium::Link(link), kind, frame.len());
        if self.failures.link_down(link) || self.failures.router_down(peer) {
            return;
        }
        if let Some(cap) = &mut self.capture {
            cap.record(self.now, frame.clone());
        }
        let class = if kind.is_control() { FaultClass::Control } else { FaultClass::Data };
        let Some(frame) = self.injector.apply(class, frame) else { return };
        let Some(peer_iface) = peer_iface else { return };
        self.queue.push(
            self.now + self.cfg.link_latency,
            Event::Arrive {
                to: Entity::Router(peer),
                iface: peer_iface,
                link_src: src_addr,
                frame,
            },
        );
    }

    fn reschedule_wake(&mut self, entity: Entity) {
        let i = self.idx(entity);
        let now = self.now;
        let Some(slot) = self.slots.get_mut(i) else { return };
        let next = slot.node.as_ref().and_then(|n| n.next_wakeup()).map(|at| at.max(now));
        // An unchanged wake instant keeps its queued event (and its
        // generation). Re-pushing would re-key the event by insertion
        // sequence, so the pop order of *simultaneous* wakes would
        // depend on which nodes happened to receive unrelated frames
        // in between — data load would reorder same-instant control
        // timers and shift the fault injector's per-class sequence
        // numbering, breaking targeted-drop replay.
        if next.is_some() && next == slot.scheduled_wake {
            return;
        }
        slot.wake_generation += 1;
        let generation = slot.wake_generation;
        slot.scheduled_wake = next;
        if let Some(at) = next {
            self.queue.push(at, Event::Wake { who: entity, generation });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::NetworkBuilder;
    use cbt_wire::{Addr, DataPacket, GroupId};
    use std::any::Any;

    /// A node that floods one data packet at t=1s and counts arrivals.
    struct Chatter {
        src: Addr,
        fire_at: Option<SimTime>,
        received: Vec<(SimTime, IfIndex)>,
    }

    impl Chatter {
        fn new(src: Addr) -> Self {
            Chatter { src, fire_at: Some(SimTime::from_secs(1)), received: Vec::new() }
        }
    }

    impl SimNode for Chatter {
        fn on_packet(
            &mut self,
            now: SimTime,
            iface: IfIndex,
            _link_src: cbt_wire::Addr,
            _frame: &Bytes,
            _out: &mut Outbox,
        ) {
            self.received.push((now, iface));
        }
        fn on_timer(&mut self, now: SimTime, out: &mut Outbox) {
            if self.fire_at.is_some_and(|t| t <= now) {
                self.fire_at = None;
                let pkt = DataPacket::new(self.src, GroupId::numbered(1), 4, b"x".to_vec());
                out.send(IfIndex(0), pkt.encode());
            }
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            self.fire_at
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn two_routers_one_lan() -> (NetworkSpec, RouterId, RouterId, HostId) {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let h = b.host("H", lan);
        (b.build(), r0, r1, h)
    }

    #[test]
    fn lan_broadcast_reaches_everyone_but_sender() {
        let (spec, r0, r1, h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.set_node(Entity::Host(h), Box::new(Chatter::new(src)));
        w.start();
        assert!(w.run_until_idle(SimTime::from_secs(10)));
        // All three fired once at t=1s; each hears the other two.
        for e in [Entity::Router(r0), Entity::Router(r1), Entity::Host(h)] {
            let n = w.node::<Chatter>(e).unwrap();
            assert_eq!(n.received.len(), 2, "{e}");
            for (at, _) in &n.received {
                assert_eq!(*at, SimTime::from_secs(1) + WorldConfig::default().lan_latency);
            }
        }
        assert_eq!(w.trace().data_frames(), 3);
    }

    #[test]
    fn link_delivery_has_latency_and_correct_iface() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        let spec = b.build();
        let src = spec.routers[0].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.start();
        assert!(w.run_until_idle(SimTime::from_secs(10)));
        let n1 = w.node::<Chatter>(Entity::Router(r1)).unwrap();
        assert_eq!(n1.received.len(), 1);
        let (at, iface) = n1.received[0];
        assert_eq!(at, SimTime::from_secs(1) + SimDuration::from_millis(1));
        assert_eq!(iface, IfIndex(0));
    }

    /// A transmission out of an interface the topology does not know is
    /// counted in the trace's drop taxonomy instead of vanishing.
    #[test]
    fn unknown_iface_drop_is_counted() {
        struct Misfire;
        impl SimNode for Misfire {
            fn on_packet(
                &mut self,
                _now: SimTime,
                _iface: IfIndex,
                _link_src: cbt_wire::Addr,
                _frame: &Bytes,
                _out: &mut Outbox,
            ) {
            }
            fn on_timer(&mut self, _now: SimTime, out: &mut Outbox) {
                let pkt = DataPacket::new(
                    Addr::from_octets(10, 1, 0, 1),
                    GroupId::numbered(1),
                    4,
                    b"x".to_vec(),
                );
                out.send(IfIndex(7), pkt.encode());
            }
            fn next_wakeup(&self) -> Option<SimTime> {
                None
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let (spec, r0, ..) = two_routers_one_lan();
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Misfire));
        w.start();
        assert_eq!(w.trace().drop_counts().get(cbt_obs::DropReason::NoFibEntry), 1);
        assert_eq!(w.trace().totals().0, 0, "nothing was carried");
    }

    #[test]
    fn failed_lan_carries_nothing() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let lan = spec.lan_by_name("S0").unwrap();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.failures_mut().fail_lan(lan);
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        assert!(w.node::<Chatter>(Entity::Router(r1)).unwrap().received.is_empty());
    }

    #[test]
    fn failed_router_neither_sends_nor_receives() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.failures_mut().fail_router(r0);
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        // r0 is down: it never fires, and never hears r1's packet.
        assert!(w.node::<Chatter>(Entity::Router(r0)).unwrap().received.is_empty());
        assert!(w.node::<Chatter>(Entity::Router(r0)).unwrap().fire_at.is_some());
        // r1 fired but nobody was there to hear it.
        assert!(w.node::<Chatter>(Entity::Router(r1)).unwrap().fire_at.is_none());
    }

    #[test]
    fn full_drop_plan_blocks_delivery_but_counts_send() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let cfg = WorldConfig { fault: FaultPlan::drops(1.0), ..Default::default() };
        let mut w = World::new(spec, cfg);
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        assert!(w.node::<Chatter>(Entity::Router(r1)).unwrap().received.is_empty());
        assert_eq!(w.trace().data_frames(), 2, "sends are traced even when dropped");
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let (spec, ..) = two_routers_one_lan();
        let mut w = World::new(spec, WorldConfig::default());
        w.run_until(SimTime::from_secs(42));
        assert_eq!(w.now(), SimTime::from_secs(42));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (spec, r0, r1, h) = two_routers_one_lan();
            let src = spec.routers[r0.0 as usize].ifaces[0].addr;
            let cfg = WorldConfig {
                fault: FaultPlan { drop_chance: 0.5, corrupt_chance: 0.2, ..FaultPlan::default() },
                seed: 99,
                ..Default::default()
            };
            let mut w = World::new(spec, cfg);
            w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
            w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
            w.set_node(Entity::Host(h), Box::new(Chatter::new(src)));
            w.start();
            w.run_until_idle(SimTime::from_secs(10));
            let mut log = Vec::new();
            for e in [Entity::Router(r0), Entity::Router(r1), Entity::Host(h)] {
                log.push(w.node::<Chatter>(e).unwrap().received.clone());
            }
            (log, w.trace().totals())
        };
        assert_eq!(run(), run());
    }

    /// A sink that keeps every frame it hears, for zero-copy asserts.
    struct Keeper {
        frames: Vec<Bytes>,
    }

    impl SimNode for Keeper {
        fn on_packet(
            &mut self,
            _now: SimTime,
            _iface: IfIndex,
            _link_src: cbt_wire::Addr,
            frame: &Bytes,
            _out: &mut Outbox,
        ) {
            self.frames.push(frame.clone());
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Outbox) {}
        fn next_wakeup(&self) -> Option<SimTime> {
            None
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn lan_fanout_shares_one_allocation() {
        // One sender, three listeners on the same LAN: every receiver's
        // frame must be a view into the same allocation.
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        let hosts: Vec<HostId> = (0..3).map(|i| b.host(format!("H{i}"), lan)).collect();
        let spec = b.build();
        let src = spec.routers[0].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        for &h in &hosts {
            w.set_node(Entity::Host(h), Box::new(Keeper { frames: Vec::new() }));
        }
        w.start();
        assert!(w.run_until_idle(SimTime::from_secs(10)));
        let frames: Vec<Bytes> = hosts
            .iter()
            .map(|&h| {
                let k = w.node::<Keeper>(Entity::Host(h)).unwrap();
                assert_eq!(k.frames.len(), 1, "host{} heard the broadcast", h.0);
                k.frames[0].clone()
            })
            .collect();
        for other in &frames[1..] {
            assert!(
                frames[0].shares_allocation_with(other),
                "fan-out must clone the handle, not the payload"
            );
            assert_eq!(&frames[0], other);
        }
    }
}
