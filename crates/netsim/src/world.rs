//! The world: a [`NetworkSpec`] instantiated with live node behaviours,
//! an event queue, latencies, failures and fault injection.

use crate::fault::{FaultInjector, FaultPlan};
use crate::node::{Entity, Outbox, SimNode};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Medium, PacketKind, Trace, TraceEntry};
use cbt_routing::FailureSet;
use cbt_topology::{Attachment, IfIndex, LanId, NetworkSpec};
use std::collections::HashMap;

/// World construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Propagation + processing delay across a point-to-point link.
    pub link_latency: SimDuration,
    /// Delay across a LAN segment.
    pub lan_latency: SimDuration,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Seed for the fault injector (the only randomness in the world).
    pub seed: u64,
    /// Record full trace entries (`true`) or counters only (`false`).
    pub record_trace: bool,
    /// Also capture every transmitted frame for pcap export
    /// ([`World::capture`]). Off by default — captures grow quickly.
    pub capture_pcap: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            link_latency: SimDuration::from_millis(1),
            lan_latency: SimDuration::from_micros(200),
            fault: FaultPlan::none(),
            seed: 0,
            record_trace: true,
            capture_pcap: false,
        }
    }
}

enum Event {
    Arrive { to: Entity, iface: IfIndex, link_src: cbt_wire::Addr, frame: Vec<u8> },
    Wake { who: Entity, generation: u64 },
}

/// The discrete-event world.
///
/// Construct with a network, plug in one [`SimNode`] per router/host
/// (entities without a node simply ignore traffic), call
/// [`World::start`], then drive time with [`World::run_until`] /
/// [`World::run_until_idle`].
pub struct World {
    spec: NetworkSpec,
    failures: FailureSet,
    cfg: WorldConfig,
    now: SimTime,
    queue: EventQueue<Event>,
    nodes: HashMap<Entity, Box<dyn SimNode>>,
    wake_generation: HashMap<Entity, u64>,
    injector: FaultInjector,
    trace: Trace,
    capture: Option<crate::pcap::Capture>,
}

impl World {
    /// Creates a world over `spec` with the given config.
    pub fn new(spec: NetworkSpec, cfg: WorldConfig) -> Self {
        World {
            spec,
            failures: FailureSet::none(),
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            wake_generation: HashMap::new(),
            injector: FaultInjector::new(cfg.fault, cfg.seed),
            trace: if cfg.record_trace { Trace::recording() } else { Trace::counters_only() },
            capture: cfg.capture_pcap.then(crate::pcap::Capture::new),
            cfg,
        }
    }

    /// The network this world instantiates.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The transmission trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The pcap frame capture, when `capture_pcap` was enabled.
    pub fn capture(&self) -> Option<&crate::pcap::Capture> {
        self.capture.as_ref()
    }

    /// Fault-injector counters: (passed clean, corrupted, dropped).
    pub fn fault_stats(&self) -> (u64, u64, u64) {
        self.injector.stats()
    }

    /// Replaces the fault plan mid-run (e.g. to end a chaos phase and
    /// observe recovery). The injector is re-seeded deterministically
    /// from the original seed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = FaultInjector::new(plan, self.cfg.seed.wrapping_add(0x9e3779b9));
    }

    /// Current failure state (shared with routing recomputation done by
    /// the harness).
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Mutates the failure state. The harness is responsible for also
    /// recomputing whatever routing tables its nodes share.
    pub fn failures_mut(&mut self) -> &mut FailureSet {
        &mut self.failures
    }

    /// Installs the behaviour for an entity, replacing any previous one
    /// (that is how router *restarts* are modelled: a fresh engine with
    /// empty state, per §6.2).
    pub fn set_node(&mut self, entity: Entity, node: Box<dyn SimNode>) {
        self.nodes.insert(entity, node);
        self.reschedule_wake(entity);
    }

    /// Typed access to a node for harness-level commands (e.g. telling
    /// a host application to join a group). Follow mutations that need
    /// to send packets with [`World::poke`].
    pub fn node_mut<N: SimNode + 'static>(&mut self, entity: Entity) -> Option<&mut N> {
        self.nodes.get_mut(&entity)?.as_any_mut().downcast_mut::<N>()
    }

    /// Immutable typed access to a node.
    pub fn node<N: SimNode + 'static>(&mut self, entity: Entity) -> Option<&N> {
        self.nodes.get_mut(&entity)?.as_any_mut().downcast_mut::<N>().map(|n| &*n)
    }

    /// Invokes `on_timer` on an entity *now* — used right after a
    /// harness-level mutation so the node can act on it.
    pub fn poke(&mut self, entity: Entity) {
        if self.entity_down(entity) {
            return;
        }
        let mut out = Outbox::new();
        let now = self.now;
        if let Some(node) = self.nodes.get_mut(&entity) {
            node.on_timer(now, &mut out);
        }
        self.emit(entity, out);
        self.reschedule_wake(entity);
    }

    /// Schedules the initial wakeups of every installed node. Call once
    /// after all nodes are installed.
    pub fn start(&mut self) {
        let mut entities: Vec<Entity> = self.nodes.keys().copied().collect();
        entities.sort(); // deterministic iteration
        for e in entities {
            self.poke(e);
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else { return false };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match event {
            Event::Arrive { to, iface, link_src, frame } => {
                if self.entity_down(to) {
                    return true;
                }
                let mut out = Outbox::new();
                if let Some(node) = self.nodes.get_mut(&to) {
                    node.on_packet(at, iface, link_src, &frame, &mut out);
                }
                self.emit(to, out);
                self.reschedule_wake(to);
            }
            Event::Wake { who, generation } => {
                if self.wake_generation.get(&who).copied().unwrap_or(0) != generation {
                    return true; // stale wake
                }
                if self.entity_down(who) {
                    return true;
                }
                let mut out = Outbox::new();
                if let Some(node) = self.nodes.get_mut(&who) {
                    node.on_timer(at, &mut out);
                }
                self.emit(who, out);
                self.reschedule_wake(who);
            }
        }
        true
    }

    /// Runs until simulated time reaches `deadline` (events after it
    /// stay queued; `now` advances to the deadline).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain or `deadline` passes, whichever is
    /// first. Returns `true` if the world went idle.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                self.now = deadline;
                return false;
            }
            self.step();
        }
        true
    }

    fn entity_down(&self, e: Entity) -> bool {
        match e {
            Entity::Router(r) => self.failures.router_down(r),
            Entity::Host(_) => false,
        }
    }

    /// Dispatches everything a node queued.
    fn emit(&mut self, from: Entity, mut out: Outbox) {
        for t in out.drain() {
            match self.medium_of(from, t.iface) {
                Some(Medium::Lan(lan)) => self.emit_lan(from, t.iface, lan, t.link_dst, t.frame),
                Some(Medium::Link(_link)) => self.emit_link(from, t.iface, t.frame),
                None => {} // unknown interface: silently dropped
            }
        }
    }

    fn medium_of(&self, from: Entity, iface: IfIndex) -> Option<Medium> {
        match from {
            Entity::Router(r) => {
                let spec = self.spec.routers.get(r.0 as usize)?;
                match spec.iface(iface)?.attachment {
                    Attachment::Lan(l) => Some(Medium::Lan(l)),
                    Attachment::Link { link, .. } => Some(Medium::Link(link)),
                }
            }
            Entity::Host(h) => {
                let spec = self.spec.hosts.get(h.0 as usize)?;
                (iface == IfIndex(0)).then_some(Medium::Lan(spec.lan))
            }
        }
    }

    fn emit_lan(
        &mut self,
        from: Entity,
        iface: IfIndex,
        lan: LanId,
        link_dst: Option<cbt_wire::Addr>,
        frame: Vec<u8>,
    ) {
        if self.failures.lan_down(lan) {
            return;
        }
        self.trace.record(TraceEntry {
            at: self.now,
            from,
            iface,
            medium: Medium::Lan(lan),
            kind: PacketKind::classify(&frame),
            bytes: frame.len(),
        });
        if let Some(cap) = &mut self.capture {
            cap.record(self.now, &frame);
        }
        let Some(frame) = self.injector.apply(frame) else { return };
        let arrive_at = self.now + self.cfg.lan_latency;
        // The link-layer source: the sender's address on this LAN.
        let link_src = match from {
            Entity::Router(r) => self
                .spec
                .routers
                .get(r.0 as usize)
                .and_then(|s| s.iface_on_lan(lan))
                .map(|(_, i)| i.addr)
                .unwrap_or(cbt_wire::Addr::NULL),
            Entity::Host(h) => {
                self.spec.hosts.get(h.0 as usize).map(|s| s.addr).unwrap_or(cbt_wire::Addr::NULL)
            }
        };
        let lan_spec = self.spec.lans[lan.0 as usize].clone();
        for r in lan_spec.routers {
            if Entity::Router(r) == from || self.failures.router_down(r) {
                continue;
            }
            let Some((rx_iface, rx_spec)) = self.spec.routers[r.0 as usize].iface_on_lan(lan)
            else {
                continue;
            };
            // Link-layer filter: a framed unicast only reaches its
            // addressee.
            if link_dst.is_some_and(|d| d != rx_spec.addr) {
                continue;
            }
            self.queue.push(
                arrive_at,
                Event::Arrive {
                    to: Entity::Router(r),
                    iface: rx_iface,
                    link_src,
                    frame: frame.clone(),
                },
            );
        }
        for h in lan_spec.hosts {
            if Entity::Host(h) == from {
                continue;
            }
            if link_dst.is_some_and(|d| d != self.spec.hosts[h.0 as usize].addr) {
                continue;
            }
            self.queue.push(
                arrive_at,
                Event::Arrive {
                    to: Entity::Host(h),
                    iface: IfIndex(0),
                    link_src,
                    frame: frame.clone(),
                },
            );
        }
    }

    fn emit_link(&mut self, from: Entity, iface: IfIndex, frame: Vec<u8>) {
        let Entity::Router(r) = from else { return };
        let Some(spec) = self.spec.routers.get(r.0 as usize) else { return };
        let Some(ifspec) = spec.iface(iface) else { return };
        let Attachment::Link { link, peer } = ifspec.attachment else { return };
        if self.failures.link_down(link) || self.failures.router_down(peer) {
            // Record the attempt (bytes hit the wire) but nothing arrives.
            self.trace.record(TraceEntry {
                at: self.now,
                from,
                iface,
                medium: Medium::Link(link),
                kind: PacketKind::classify(&frame),
                bytes: frame.len(),
            });
            return;
        }
        self.trace.record(TraceEntry {
            at: self.now,
            from,
            iface,
            medium: Medium::Link(link),
            kind: PacketKind::classify(&frame),
            bytes: frame.len(),
        });
        if let Some(cap) = &mut self.capture {
            cap.record(self.now, &frame);
        }
        let Some(frame) = self.injector.apply(frame) else { return };
        // Find the peer's interface on this link.
        let peer_iface = self.spec.routers[peer.0 as usize]
            .ifaces
            .iter()
            .position(|pi| matches!(pi.attachment, Attachment::Link { link: l, .. } if l == link));
        let Some(peer_iface) = peer_iface else { return };
        self.queue.push(
            self.now + self.cfg.link_latency,
            Event::Arrive {
                to: Entity::Router(peer),
                iface: IfIndex(peer_iface as u32),
                link_src: ifspec.addr,
                frame,
            },
        );
    }

    fn reschedule_wake(&mut self, entity: Entity) {
        let generation = self.wake_generation.entry(entity).or_insert(0);
        *generation += 1;
        let generation = *generation;
        if let Some(node) = self.nodes.get(&entity) {
            if let Some(at) = node.next_wakeup() {
                let at = at.max(self.now);
                self.queue.push(at, Event::Wake { who: entity, generation });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::{HostId, NetworkBuilder, RouterId};
    use cbt_wire::{Addr, DataPacket, GroupId};
    use std::any::Any;

    /// A node that floods one data packet at t=1s and counts arrivals.
    struct Chatter {
        src: Addr,
        fire_at: Option<SimTime>,
        received: Vec<(SimTime, IfIndex)>,
    }

    impl Chatter {
        fn new(src: Addr) -> Self {
            Chatter { src, fire_at: Some(SimTime::from_secs(1)), received: Vec::new() }
        }
    }

    impl SimNode for Chatter {
        fn on_packet(
            &mut self,
            now: SimTime,
            iface: IfIndex,
            _link_src: cbt_wire::Addr,
            _frame: &[u8],
            _out: &mut Outbox,
        ) {
            self.received.push((now, iface));
        }
        fn on_timer(&mut self, now: SimTime, out: &mut Outbox) {
            if self.fire_at.is_some_and(|t| t <= now) {
                self.fire_at = None;
                let pkt = DataPacket::new(self.src, GroupId::numbered(1), 4, b"x".to_vec());
                out.send(IfIndex(0), pkt.encode());
            }
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            self.fire_at
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_routers_one_lan() -> (NetworkSpec, RouterId, RouterId, HostId) {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let h = b.host("H", lan);
        (b.build(), r0, r1, h)
    }

    #[test]
    fn lan_broadcast_reaches_everyone_but_sender() {
        let (spec, r0, r1, h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.set_node(Entity::Host(h), Box::new(Chatter::new(src)));
        w.start();
        assert!(w.run_until_idle(SimTime::from_secs(10)));
        // All three fired once at t=1s; each hears the other two.
        for e in [Entity::Router(r0), Entity::Router(r1), Entity::Host(h)] {
            let n = w.node_mut::<Chatter>(e).unwrap();
            assert_eq!(n.received.len(), 2, "{e}");
            for (at, _) in &n.received {
                assert_eq!(*at, SimTime::from_secs(1) + WorldConfig::default().lan_latency);
            }
        }
        assert_eq!(w.trace().data_frames(), 3);
    }

    #[test]
    fn link_delivery_has_latency_and_correct_iface() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        let spec = b.build();
        let src = spec.routers[0].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.start();
        assert!(w.run_until_idle(SimTime::from_secs(10)));
        let n1 = w.node_mut::<Chatter>(Entity::Router(r1)).unwrap();
        assert_eq!(n1.received.len(), 1);
        let (at, iface) = n1.received[0];
        assert_eq!(at, SimTime::from_secs(1) + SimDuration::from_millis(1));
        assert_eq!(iface, IfIndex(0));
    }

    #[test]
    fn failed_lan_carries_nothing() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let lan = spec.lan_by_name("S0").unwrap();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.failures_mut().fail_lan(lan);
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        assert!(w.node_mut::<Chatter>(Entity::Router(r1)).unwrap().received.is_empty());
    }

    #[test]
    fn failed_router_neither_sends_nor_receives() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let mut w = World::new(spec, WorldConfig::default());
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.failures_mut().fail_router(r0);
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        // r0 is down: it never fires, and never hears r1's packet.
        assert!(w.node_mut::<Chatter>(Entity::Router(r0)).unwrap().received.is_empty());
        assert!(w.node_mut::<Chatter>(Entity::Router(r0)).unwrap().fire_at.is_some());
        // r1 fired but nobody was there to hear it.
        assert!(w.node_mut::<Chatter>(Entity::Router(r1)).unwrap().fire_at.is_none());
    }

    #[test]
    fn full_drop_plan_blocks_delivery_but_counts_send() {
        let (spec, r0, r1, _h) = two_routers_one_lan();
        let src = spec.routers[r0.0 as usize].ifaces[0].addr;
        let cfg = WorldConfig { fault: FaultPlan::drops(1.0), ..Default::default() };
        let mut w = World::new(spec, cfg);
        w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
        w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
        w.start();
        w.run_until_idle(SimTime::from_secs(10));
        assert!(w.node_mut::<Chatter>(Entity::Router(r1)).unwrap().received.is_empty());
        assert_eq!(w.trace().data_frames(), 2, "sends are traced even when dropped");
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let (spec, ..) = two_routers_one_lan();
        let mut w = World::new(spec, WorldConfig::default());
        w.run_until(SimTime::from_secs(42));
        assert_eq!(w.now(), SimTime::from_secs(42));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (spec, r0, r1, h) = two_routers_one_lan();
            let src = spec.routers[r0.0 as usize].ifaces[0].addr;
            let cfg = WorldConfig {
                fault: FaultPlan { drop_chance: 0.5, corrupt_chance: 0.2 },
                seed: 99,
                ..Default::default()
            };
            let mut w = World::new(spec, cfg);
            w.set_node(Entity::Router(r0), Box::new(Chatter::new(src)));
            w.set_node(Entity::Router(r1), Box::new(Chatter::new(src)));
            w.set_node(Entity::Host(h), Box::new(Chatter::new(src)));
            w.start();
            w.run_until_idle(SimTime::from_secs(10));
            let mut log = Vec::new();
            for e in [Entity::Router(r0), Entity::Router(r1), Entity::Host(h)] {
                log.push(w.node_mut::<Chatter>(e).unwrap().received.clone());
            }
            (log, w.trace().totals())
        };
        assert_eq!(run(), run());
    }
}
