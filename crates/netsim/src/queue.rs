//! A stable discrete-event queue: events at equal times pop in
//! insertion order, which is what makes whole-simulation determinism a
//! theorem instead of a hope.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-queue of `(SimTime, T)` with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    key: Reverse<(SimTime, u64)>,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `value` at `at`.
    pub fn push(&mut self, at: SimTime, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), value });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.value))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0 + SimDuration::from_secs(5), "late");
        q.push(t0 + SimDuration::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(t0 + SimDuration::from_secs(2), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn fifo_holds_per_timestamp_under_mixed_times() {
        // Insertion order deliberately scrambles the timestamps; within
        // each timestamp the pop order must still be insertion order.
        let mut q = EventQueue::new();
        let (t1, t2) = (SimTime::from_secs(1), SimTime::from_secs(2));
        q.push(t2, "t2-a");
        q.push(t1, "t1-a");
        q.push(t2, "t2-b");
        q.push(t1, "t1-b");
        q.push(t1, "t1-c");
        q.push(t2, "t2-c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (t1, "t1-a"),
                (t1, "t1-b"),
                (t1, "t1-c"),
                (t2, "t2-a"),
                (t2, "t2-b"),
                (t2, "t2-c"),
            ]
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
