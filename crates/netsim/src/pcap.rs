//! Classic libpcap capture files from simulator traffic.
//!
//! The simulator moves genuine IPv4 datagrams, so a capture written
//! here opens in Wireshark/tcpdump (`LINKTYPE_RAW` = raw IP): the CBT
//! joins, acks and encapsulated data packets appear with their real
//! byte layouts — the same debugging affordance smoltcp's examples
//! provide with their `--pcap` flag.
//!
//! Format reference: the (pre-pcapng) libpcap file format — a 24-byte
//! global header followed by per-packet records with
//! seconds/microseconds timestamps.

use crate::time::SimTime;
use bytes::Bytes;
use std::io::{self, Write};

/// Magic for microsecond-resolution pcap, little-endian.
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin directly with an IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;
/// Snap length: we never truncate.
const SNAPLEN: u32 = 65535;

/// An in-memory pcap capture: append frames, then write the file.
///
/// ```
/// use cbt_netsim::{Capture, SimTime};
///
/// let mut cap = Capture::new();
/// cap.record(SimTime::from_secs(1), vec![0x45, 0x00, 0x00, 0x14]);
/// let mut file = Vec::new();
/// cap.write_to(&mut file).unwrap();
/// let records = Capture::parse(&file).unwrap();
/// assert_eq!(records[0].0, 1_000_000); // microseconds
/// ```
#[derive(Debug, Default, Clone)]
pub struct Capture {
    frames: Vec<(SimTime, Bytes)>,
}

impl Capture {
    /// Empty capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// Appends one frame observed at `at`. Takes anything convertible
    /// to [`Bytes`]; the simulator hands in a refcounted clone of the
    /// in-flight frame, so capturing costs a pointer bump, not a copy.
    pub fn record(&mut self, at: SimTime, frame: impl Into<Bytes>) {
        self.frames.push((at, frame.into()));
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serialises the whole capture as a pcap file.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        // Global header.
        w.write_all(&PCAP_MAGIC.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&SNAPLEN.to_le_bytes())?;
        w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        // Records.
        for (at, frame) in &self.frames {
            let us = at.micros();
            w.write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
            w.write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
            let len = frame.len() as u32;
            w.write_all(&len.to_le_bytes())?; // incl_len (no truncation)
            w.write_all(&len.to_le_bytes())?; // orig_len
            w.write_all(frame)?;
        }
        Ok(())
    }

    /// Writes the capture to a file path.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(f))
    }

    /// Parses a pcap file produced by [`Capture::write_to`] back into
    /// `(micros, frame)` pairs — used by tests and round-trip tooling.
    pub fn parse(bytes: &[u8]) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if bytes.len() < 24 {
            return Err(err("truncated global header"));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != PCAP_MAGIC {
            return Err(err("bad magic"));
        }
        let network = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        if network != LINKTYPE_RAW {
            return Err(err("unexpected linktype"));
        }
        let mut out = Vec::new();
        let mut off = 24;
        while off < bytes.len() {
            if off + 16 > bytes.len() {
                return Err(err("truncated record header"));
            }
            let secs = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as u64;
            let usecs = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as u64;
            let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 16;
            if off + incl > bytes.len() {
                return Err(err("truncated record body"));
            }
            out.push((secs * 1_000_000 + usecs, bytes[off..off + incl].to_vec()));
            off += incl;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_wire::{Addr, DataPacket, GroupId};

    #[test]
    fn empty_capture_is_just_the_header() {
        let mut buf = Vec::new();
        Capture::new().write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &PCAP_MAGIC.to_le_bytes());
        assert!(Capture::parse(&buf).unwrap().is_empty());
    }

    #[test]
    fn round_trip_preserves_frames_and_timestamps() {
        let mut cap = Capture::new();
        let f1 = DataPacket::new(
            Addr::from_octets(10, 1, 0, 100),
            GroupId::numbered(1),
            9,
            b"a".to_vec(),
        )
        .encode();
        let f2 = vec![0x45u8; 40];
        cap.record(SimTime::from_micros(1_500_000), f1.clone());
        cap.record(SimTime::from_micros(2_000_001), f2.clone());
        assert_eq!(cap.len(), 2);
        let mut buf = Vec::new();
        cap.write_to(&mut buf).unwrap();
        let parsed = Capture::parse(&buf).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], (1_500_000, f1));
        assert_eq!(parsed[1], (2_000_001, f2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Capture::parse(&[0u8; 10]).is_err(), "short header");
        assert!(Capture::parse(&[0xffu8; 24]).is_err(), "bad magic");
        let mut buf = Vec::new();
        let mut cap = Capture::new();
        cap.record(SimTime::ZERO, vec![1, 2, 3]);
        cap.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(Capture::parse(&buf).is_err(), "truncated body");
    }

    #[test]
    fn frames_parse_as_ip_after_round_trip() {
        // The point of LINKTYPE_RAW: the record body is an IP datagram.
        let mut cap = Capture::new();
        let pkt = DataPacket::new(
            Addr::from_octets(10, 1, 0, 100),
            GroupId::numbered(5),
            16,
            b"hello".to_vec(),
        );
        cap.record(SimTime::from_secs(3), pkt.encode());
        let mut buf = Vec::new();
        cap.write_to(&mut buf).unwrap();
        let parsed = Capture::parse(&buf).unwrap();
        let back = DataPacket::decode(&parsed[0].1).unwrap();
        assert_eq!(back, pkt);
    }
}
