//! Transmission trace: every frame the world carries, classified by
//! protocol, with aggregate counters.
//!
//! This is the measurement tap for two whole experiment families:
//! control-overhead (count messages by [`PacketKind`]) and
//! traffic-concentration (count data bytes per link/LAN).

use crate::node::Entity;
use crate::time::SimTime;
use cbt_obs::{DropCounters, DropReason};
use cbt_topology::{IfIndex, LanId, LinkId};
use cbt_wire::{
    ControlMessage, ControlType, IgmpMessage, IgmpType, IpProto, Ipv4Header, UdpHeader,
};
use std::collections::HashMap;

/// Protocol classification of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A CBT control message of the given type (in UDP, §3).
    Control(ControlType),
    /// An IGMP message of the given type.
    Igmp(IgmpType),
    /// Native-mode multicast data (§4).
    DataNative,
    /// CBT-mode encapsulated data (§5).
    DataCbt,
    /// Anything that did not parse (corrupted in flight, or not ours).
    Other,
}

impl PacketKind {
    /// Classifies a raw frame by parsing just enough headers.
    pub fn classify(frame: &[u8]) -> PacketKind {
        let Ok(ip) = Ipv4Header::decode(frame) else { return PacketKind::Other };
        let body = &frame[20..];
        match ip.proto {
            IpProto::Cbt => PacketKind::DataCbt,
            IpProto::Igmp => match IgmpMessage::decode(body) {
                Ok(m) => PacketKind::Igmp(m.igmp_type()),
                Err(_) => PacketKind::Other,
            },
            IpProto::Udp => match UdpHeader::unwrap(body) {
                Ok((udp, payload))
                    if udp.dst_port == cbt_wire::CBT_PRIMARY_PORT
                        || udp.dst_port == cbt_wire::CBT_AUX_PORT =>
                {
                    match ControlMessage::decode(payload) {
                        Ok(m) => PacketKind::Control(m.control_type()),
                        Err(_) => PacketKind::Other,
                    }
                }
                Ok(_) if ip.dst.is_multicast() => PacketKind::DataNative,
                _ => PacketKind::Other,
            },
            IpProto::IpIp => PacketKind::DataCbt,
        }
    }

    /// True for either data kind.
    pub fn is_data(self) -> bool {
        matches!(self, PacketKind::DataNative | PacketKind::DataCbt)
    }

    /// True for CBT control or CBT-relevant IGMP — the "protocol
    /// overhead" bucket of experiment S93-T3.
    pub fn is_control(self) -> bool {
        matches!(self, PacketKind::Control(_) | PacketKind::Igmp(_))
    }
}

/// The medium a frame crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    /// A multi-access LAN.
    Lan(LanId),
    /// A point-to-point link.
    Link(LinkId),
}

/// One recorded transmission.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When it was sent.
    pub at: SimTime,
    /// Who sent it.
    pub from: Entity,
    /// Out of which interface.
    pub iface: IfIndex,
    /// Over which medium.
    pub medium: Medium,
    /// Classification.
    pub kind: PacketKind,
    /// Frame size in bytes.
    pub bytes: usize,
}

/// The trace: optional full log plus always-on counters.
#[derive(Debug)]
pub struct Trace {
    keep_entries: bool,
    entries: Vec<TraceEntry>,
    by_kind: HashMap<PacketKind, u64>,
    data_bytes_by_medium: HashMap<Medium, u64>,
    frames_by_medium: HashMap<Medium, u64>,
    total_frames: u64,
    total_bytes: u64,
    drops: DropCounters,
}

impl Trace {
    /// A trace that records full entries (tests, walkthroughs).
    pub fn recording() -> Self {
        Self::new(true)
    }

    /// A counters-only trace (large sweeps).
    pub fn counters_only() -> Self {
        Self::new(false)
    }

    fn new(keep_entries: bool) -> Self {
        Trace {
            keep_entries,
            entries: Vec::new(),
            by_kind: HashMap::new(),
            data_bytes_by_medium: HashMap::new(),
            frames_by_medium: HashMap::new(),
            total_frames: 0,
            total_bytes: 0,
            drops: DropCounters::default(),
        }
    }

    /// Records a frame the world refused to carry, under the shared
    /// drop-reason taxonomy (e.g. a transmission out of an interface
    /// the topology does not know).
    pub fn record_drop(&mut self, reason: DropReason) {
        self.drops.bump(reason);
    }

    /// Frames the world refused to carry, by reason.
    pub fn drop_counts(&self) -> &DropCounters {
        &self.drops
    }

    /// Records one transmission.
    pub fn record(&mut self, entry: TraceEntry) {
        self.record_tx(entry.at, entry.from, entry.iface, entry.medium, entry.kind, entry.bytes);
    }

    /// Hot-path recording: bumps the counters from loose fields and
    /// only materialises a [`TraceEntry`] when full recording is on.
    /// In counters-only mode (the large experiment sweeps) this is the
    /// whole cost — no struct construction, no `Vec` push.
    pub fn record_tx(
        &mut self,
        at: SimTime,
        from: Entity,
        iface: IfIndex,
        medium: Medium,
        kind: PacketKind,
        bytes: usize,
    ) {
        *self.by_kind.entry(kind).or_default() += 1;
        *self.frames_by_medium.entry(medium).or_default() += 1;
        if kind.is_data() {
            *self.data_bytes_by_medium.entry(medium).or_default() += bytes as u64;
        }
        self.total_frames += 1;
        self.total_bytes += bytes as u64;
        if self.keep_entries {
            self.entries.push(TraceEntry { at, from, iface, medium, kind, bytes });
        }
    }

    /// Full entries (empty if counters-only).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Count of frames of a given kind.
    pub fn count(&self, kind: PacketKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Total control-plane frames (CBT control + IGMP).
    pub fn control_frames(&self) -> u64 {
        self.by_kind.iter().filter(|(k, _)| k.is_control()).map(|(_, v)| v).sum()
    }

    /// CBT control frames only (no IGMP) — the protocol-overhead metric
    /// comparable across multicast schemes, which all need IGMP anyway.
    pub fn cbt_control_frames(&self) -> u64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| matches!(k, PacketKind::Control(_)))
            .map(|(_, v)| v)
            .sum()
    }

    /// Total data frames (both modes).
    pub fn data_frames(&self) -> u64 {
        self.by_kind.iter().filter(|(k, _)| k.is_data()).map(|(_, v)| v).sum()
    }

    /// Data bytes carried per medium — the traffic-concentration input.
    pub fn data_bytes_by_medium(&self) -> &HashMap<Medium, u64> {
        &self.data_bytes_by_medium
    }

    /// Frames carried per medium.
    pub fn frames_by_medium(&self) -> &HashMap<Medium, u64> {
        &self.frames_by_medium
    }

    /// (total frames, total bytes).
    pub fn totals(&self) -> (u64, u64) {
        (self.total_frames, self.total_bytes)
    }

    /// All per-kind counters, sorted for stable display.
    pub fn kind_counts(&self) -> Vec<(PacketKind, u64)> {
        let mut v: Vec<_> = self.by_kind.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|(k, _)| format!("{k:?}"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_wire::{Addr, DataPacket, GroupId, JoinSubcode};

    fn control_frame() -> Vec<u8> {
        let msg = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: GroupId::numbered(1),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 3),
            cores: vec![Addr::from_octets(10, 255, 0, 3)],
        };
        let udp = UdpHeader::wrap(
            cbt_wire::CBT_PRIMARY_PORT,
            cbt_wire::CBT_PRIMARY_PORT,
            &msg.encode().unwrap(),
        );
        cbt_wire::ipv4::build_datagram(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(172, 31, 0, 2),
            IpProto::Udp,
            64,
            &udp,
        )
    }

    #[test]
    fn classify_control() {
        assert_eq!(
            PacketKind::classify(&control_frame()),
            PacketKind::Control(ControlType::JoinRequest)
        );
    }

    #[test]
    fn classify_igmp() {
        let igmp = IgmpMessage::Leave { group: GroupId::numbered(2) }.encode();
        let frame = cbt_wire::ipv4::build_datagram(
            Addr::from_octets(10, 1, 0, 100),
            cbt_wire::ALL_ROUTERS,
            IpProto::Igmp,
            1,
            &igmp,
        );
        assert_eq!(PacketKind::classify(&frame), PacketKind::Igmp(IgmpType::LeaveGroup));
    }

    #[test]
    fn classify_native_data() {
        let p = DataPacket::new(
            Addr::from_octets(10, 1, 0, 100),
            GroupId::numbered(2),
            16,
            b"x".to_vec(),
        );
        assert_eq!(PacketKind::classify(&p.encode()), PacketKind::DataNative);
    }

    #[test]
    fn classify_cbt_data() {
        let p = DataPacket::new(
            Addr::from_octets(10, 1, 0, 100),
            GroupId::numbered(2),
            16,
            b"x".to_vec(),
        );
        let enc = cbt_wire::CbtDataPacket::encapsulate(&p, Addr::from_octets(10, 255, 0, 3));
        let frame =
            enc.wrap_unicast(Addr::from_octets(1, 1, 1, 1), Addr::from_octets(2, 2, 2, 2), None);
        assert_eq!(PacketKind::classify(&frame), PacketKind::DataCbt);
    }

    #[test]
    fn classify_garbage_as_other() {
        assert_eq!(PacketKind::classify(&[0xde, 0xad]), PacketKind::Other);
        let mut frame = control_frame();
        frame[25] ^= 0x01; // corrupt inside the UDP region
        assert_eq!(PacketKind::classify(&frame), PacketKind::Other);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::recording();
        let e = TraceEntry {
            at: SimTime::ZERO,
            from: Entity::Router(cbt_topology::RouterId(0)),
            iface: IfIndex(0),
            medium: Medium::Link(LinkId(0)),
            kind: PacketKind::classify(&control_frame()),
            bytes: control_frame().len(),
        };
        t.record(e.clone());
        t.record(TraceEntry { kind: PacketKind::DataNative, bytes: 50, ..e.clone() });
        t.record(TraceEntry {
            kind: PacketKind::DataCbt,
            bytes: 90,
            medium: Medium::Lan(LanId(1)),
            ..e
        });
        assert_eq!(t.control_frames(), 1);
        assert_eq!(t.data_frames(), 2);
        assert_eq!(t.count(PacketKind::Control(ControlType::JoinRequest)), 1);
        assert_eq!(t.data_bytes_by_medium()[&Medium::Link(LinkId(0))], 50);
        assert_eq!(t.data_bytes_by_medium()[&Medium::Lan(LanId(1))], 90);
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.totals().0, 3);
    }

    #[test]
    fn drop_taxonomy_accumulates() {
        let mut t = Trace::counters_only();
        t.record_drop(DropReason::NoFibEntry);
        t.record_drop(DropReason::NoFibEntry);
        t.record_drop(DropReason::TtlExpired);
        assert_eq!(t.drop_counts().get(DropReason::NoFibEntry), 2);
        assert_eq!(t.drop_counts().get(DropReason::TtlExpired), 1);
        assert_eq!(t.drop_counts().total(), 3);
    }

    #[test]
    fn counters_only_drops_entries() {
        let mut t = Trace::counters_only();
        t.record(TraceEntry {
            at: SimTime::ZERO,
            from: Entity::Router(cbt_topology::RouterId(0)),
            iface: IfIndex(0),
            medium: Medium::Link(LinkId(0)),
            kind: PacketKind::DataNative,
            bytes: 10,
        });
        assert!(t.entries().is_empty());
        assert_eq!(t.totals(), (1, 10));
    }
}
