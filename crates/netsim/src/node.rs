//! The plug-in interface between the simulator and protocol behaviours.

use crate::time::SimTime;
use bytes::Bytes;
use cbt_topology::{HostId, IfIndex, RouterId};

/// An addressable entity in the world: a router or a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Entity {
    /// A router (indexes `NetworkSpec::routers`).
    Router(RouterId),
    /// A host (indexes `NetworkSpec::hosts`); hosts have a single
    /// implicit interface 0 on their LAN.
    Host(HostId),
}

impl std::fmt::Display for Entity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Entity::Router(r) => write!(f, "{r}"),
            Entity::Host(h) => write!(f, "host{}", h.0),
        }
    }
}

/// One outbound transmission requested by a node: a complete IP
/// datagram handed to an interface.
///
/// `link_dst` is the link-layer destination, standing in for the MAC
/// address real Ethernet would carry: on a LAN, `Some(addr)` delivers
/// only to the attachment owning that IP address (the resolved next
/// hop), while `None` broadcasts to every other attachment (multicast
/// and true broadcasts). Point-to-point links ignore it — the peer
/// gets everything.
#[derive(Debug, Clone)]
pub struct Transmit {
    /// Which of the node's interfaces to send on (always 0 for hosts).
    pub iface: IfIndex,
    /// Link-layer destination on multi-access media.
    pub link_dst: Option<cbt_wire::Addr>,
    /// The full datagram. Refcounted: LAN fan-out clones this per
    /// receiver for the price of a pointer bump, not a buffer copy.
    pub frame: Bytes,
}

/// Collects a node's outbound transmissions during one callback.
#[derive(Debug, Default)]
pub struct Outbox {
    sends: Vec<Transmit>,
}

impl Outbox {
    /// New empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a frame on an interface, link-layer broadcast.
    ///
    /// Accepts anything convertible to [`Bytes`]; in particular a
    /// `Vec<u8>` is taken over without copying its buffer.
    pub fn send(&mut self, iface: IfIndex, frame: impl Into<Bytes>) {
        self.sends.push(Transmit { iface, link_dst: None, frame: frame.into() });
    }

    /// Queues a frame for one specific link-layer neighbour (the
    /// next-hop resolution an ARP lookup would have done).
    pub fn send_to(&mut self, iface: IfIndex, link_dst: cbt_wire::Addr, frame: impl Into<Bytes>) {
        self.sends.push(Transmit { iface, link_dst: Some(link_dst), frame: frame.into() });
    }

    /// Drains everything queued.
    pub fn drain(&mut self) -> Vec<Transmit> {
        std::mem::take(&mut self.sends)
    }

    /// Drains everything queued into a caller-provided buffer, keeping
    /// both allocations alive for reuse. Hot loops (the live node
    /// tasks) call this with a scratch `Vec` instead of [`drain`],
    /// which gives up the outbox's capacity every call.
    ///
    /// [`drain`]: Outbox::drain
    pub fn drain_into(&mut self, buf: &mut Vec<Transmit>) {
        buf.append(&mut self.sends);
    }

    /// Number of queued transmissions.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// A protocol behaviour living on one entity.
///
/// The contract is sans-I/O: the node never blocks, never sleeps, and
/// owns no clock — it reacts to packets and timer pokes, emits frames
/// into the [`Outbox`], and advertises its next wakeup. The same
/// implementations run under tokio in `cbt-node` by translating the
/// callbacks.
pub trait SimNode {
    /// A frame arrived on `iface` at `now`. `link_src` is the
    /// link-layer sender — the neighbour's interface address on the
    /// shared medium (what the source MAC address tells a real router).
    /// Protocols use it to accept branch traffic only from actual tree
    /// neighbours.
    /// The frame arrives as [`Bytes`]: on a LAN every receiver gets a
    /// view into the same allocation. Deref to `&[u8]` for parsing.
    fn on_packet(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        link_src: cbt_wire::Addr,
        frame: &Bytes,
        out: &mut Outbox,
    );

    /// The node's requested wakeup time arrived (or the harness pokes
    /// it at start-of-world with `now == SimTime::ZERO`).
    fn on_timer(&mut self, now: SimTime, out: &mut Outbox);

    /// The earliest future instant this node wants `on_timer` called,
    /// if any. Re-queried after every callback.
    fn next_wakeup(&self) -> Option<SimTime>;

    /// Downcast hook so harnesses can reach their concrete node types
    /// through the trait object (e.g. to tell a host app "join group G
    /// now"). Implementations are always the one-liner `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Immutable downcast hook: the `&self` twin of
    /// [`SimNode::as_any_mut`], letting harnesses *inspect* a node
    /// without exclusive access to the world. Implementations are
    /// always the one-liner `self`.
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_and_drains() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(IfIndex(0), vec![1, 2, 3]);
        out.send(IfIndex(2), vec![4]);
        assert_eq!(out.len(), 2);
        let drained = out.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].iface, IfIndex(0));
        assert_eq!(drained[1].frame, Bytes::from(vec![4u8]));
        assert!(out.is_empty());
    }

    #[test]
    fn drain_into_appends_and_empties() {
        let mut out = Outbox::new();
        let mut buf = Vec::new();
        out.send(IfIndex(0), vec![1]);
        out.send(IfIndex(1), vec![2]);
        out.drain_into(&mut buf);
        assert_eq!(buf.len(), 2);
        assert!(out.is_empty());
        // Draining again appends, never clobbers.
        out.send(IfIndex(2), vec![3]);
        out.drain_into(&mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[2].iface, IfIndex(2));
    }

    #[test]
    fn entity_ordering_and_display() {
        let a = Entity::Router(RouterId(1));
        let b = Entity::Host(HostId(0));
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "R1");
        assert_eq!(b.to_string(), "host0");
    }
}
