//! Property test: the event queue is a stable priority queue — events
//! pop in time order, FIFO within equal times, regardless of insertion
//! interleaving. Whole-simulation determinism rests on this.

use cbt_netsim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn stable_time_ordering(times in proptest::collection::vec(0u64..50, 0..200)) {
        let mut q = EventQueue::new();
        for (seq, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), seq);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO within equal times");
            }
        }
    }

    /// Interleaved push/pop keeps the invariant: anything popped is
    /// ≤ everything still queued at pop time.
    #[test]
    fn interleaved_operations(ops in proptest::collection::vec((any::<bool>(), 0u64..40), 0..300)) {
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        for (push, t) in ops {
            if push || q.is_empty() {
                q.push(SimTime::from_micros(t), seq);
                seq += 1;
            } else {
                let popped_at = q.pop().unwrap().0;
                if let Some(next) = q.peek_time() {
                    prop_assert!(popped_at <= next);
                }
            }
        }
    }
}
