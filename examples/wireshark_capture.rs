//! Capture a CBT protocol conversation to a pcap file you can open in
//! Wireshark/tcpdump.
//!
//! Runs the spec's Figure 1 join-and-data walkthrough in CBT mode with
//! frame capture enabled, then writes `cbt-figure1.pcap` into the
//! current directory. Every record is a raw IPv4 datagram
//! (LINKTYPE_RAW): the IGMP reports, the §8 control messages in their
//! UDP port-7777 shells, and the CBT-mode encapsulated data packets.
//!
//! ```text
//! cargo run --example wireshark_capture
//! wireshark cbt-figure1.pcap   # or: tcpdump -r cbt-figure1.pcap
//! ```

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{PacketKind, SimTime, WorldConfig};
use cbt_topology::figure1;
use cbt_wire::GroupId;

fn main() {
    let fig = figure1();
    let group = GroupId::numbered(1);
    let cores =
        vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())];

    let mut cw = CbtWorld::build(
        fig.net.clone(),
        CbtConfig::fast().with_mode(cbt::config::ForwardingMode::CbtMode),
        WorldConfig { capture_pcap: true, ..Default::default() },
    );
    for h in [fig.hosts.a, fig.hosts.b, fig.hosts.g, fig.hosts.j] {
        cw.host(h).join_at(SimTime::from_secs(1), group, cores.clone());
    }
    cw.host(fig.hosts.g).send_at(SimTime::from_secs(3), group, b"capture me".to_vec(), 32);
    cw.host(fig.hosts.b).leave_at(SimTime::from_secs(5), group);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(10));

    let trace = cw.world.trace();
    println!("simulated 10s of Figure 1 protocol activity:");
    for (kind, count) in trace.kind_counts() {
        println!("  {count:6}  {kind:?}");
    }
    let _ = PacketKind::DataCbt; // (type referenced for readers)

    let cap = cw.world.capture().expect("capture enabled");
    let path = "cbt-figure1.pcap";
    cap.save(path).expect("write pcap");
    println!(
        "\nwrote {} frames to {path} — open it in Wireshark; the joins are UDP/7777, \
         the keepalives UDP/7778, the encapsulated data IP protocol 7 (CBT).",
        cap.len()
    );
}
