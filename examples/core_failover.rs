//! Core failover: the §6.1 re-attachment machinery under a primary-core
//! crash, on a random wide-area topology.
//!
//! Builds a 40-router Waxman graph, joins ten members toward a
//! two-entry core list, kills the primary core router cold, and
//! narrates the recovery: echo timeouts firing, REJOINs steering to the
//! secondary core, and data flowing again.
//!
//! ```text
//! cargo run --example core_failover
//! ```

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, AllPairs, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;

fn main() {
    // Seeded Waxman topology, reproducible run after run.
    let graph = generate::waxman(generate::WaxmanParams { n: 40, ..Default::default() }, 7);
    let ap = AllPairs::compute(&graph);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);

    // Members: ten routers spread over the graph (every 4th node).
    let members: Vec<NodeId> = (0..40).step_by(4).map(|i| NodeId(i as u32)).collect();
    let primary = ap.medoid(&members).expect("connected");
    let secondary = ap.center().filter(|c| *c != primary).unwrap_or(NodeId(1));
    let members: Vec<NodeId> =
        members.into_iter().filter(|m| *m != primary && *m != secondary).collect();
    let cores = vec![net.router_addr(RouterId(primary.0)), net.router_addr(RouterId(secondary.0))];
    let group = GroupId::numbered(1);

    println!("topology:  Waxman n=40 (seed 7), {} edges", graph.edge_count());
    println!("cores:     primary R{} | secondary R{}", primary.0, secondary.0);
    println!("members:   {} routers\n", members.len());

    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    for m in &members {
        cw.host(HostId(m.0)).join_at(SimTime::from_secs(1), group, cores.clone());
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(8));

    let on_tree = |cw: &mut CbtWorld| {
        members.iter().filter(|m| cw.router(RouterId(m.0)).engine().is_on_tree(group)).count()
    };
    println!("t=8s   all joined: {}/{} member DRs on-tree", on_tree(&mut cw), members.len());

    // Kill the primary core.
    println!("t=8s   *** primary core R{} crashes ***", primary.0);
    cw.fail_router(RouterId(primary.0));

    // Recovery is judged by the honest signal: end-to-end delivery.
    // (FIB entries through the dead core look intact until the echo
    // timeout — 9 s under fast timers — declares the parent dead.)
    let sender = HostId(members[0].0);
    let receiver = HostId(members[members.len() - 1].0);
    let receiver_start = cw.host(receiver).received().len();
    let kill_at = cw.world.now();
    let mut recovered_at = None;
    for round in 1..=12u64 {
        let t_probe = cw.world.now();
        cw.host(sender).send_at(t_probe, group, format!("probe-{round}").into_bytes(), 64);
        cw.touch_host(sender);
        cw.world.run_until(kill_at + SimDuration::from_secs(3 * round));
        let delivered = cw.host(receiver).received().len() > receiver_start;
        let failures: u64 =
            members.iter().map(|m| cw.router(RouterId(m.0)).engine().stats().parent_failures).sum();
        println!(
            "t={:>2}s after crash: probe {} — {} ({} parent-failure events so far, {}/{} DRs attached)",
            3 * round,
            round,
            if delivered { "DELIVERED" } else { "lost" },
            failures,
            on_tree(&mut cw),
            members.len(),
        );
        if delivered {
            recovered_at = Some(3 * round);
            break;
        }
    }
    let recovered_at = recovered_at.expect("secondary core absorbed the group");
    println!(
        "\nok: service restored {recovered_at}s after the crash \
         (echo timeout 9s + rejoin to the secondary core), with zero manual intervention."
    );
}
