//! The live deployment shape: every router and host is a concurrent
//! tokio task with wall-clock timers, exchanging the byte-exact wire
//! formats over an in-process fabric. The same engine code as the
//! simulator — different executor.
//!
//! Runs in real time (a few seconds).
//!
//! ```text
//! cargo run --example live_tokio
//! ```

use cbt::CbtConfig;
use cbt_node::LiveNet;
use cbt_topology::NetworkBuilder;
use cbt_wire::GroupId;
use std::time::Duration;

#[tokio::main]
async fn main() {
    // A — R0 — R1(core) — R2 — B, plus a third leaf C under R1.
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let r2 = b.router("R2");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let a = b.host("A", s0);
    b.link(r0, r1, 1);
    b.link(r1, r2, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r2);
    let bb = b.host("B", s1);
    let s2 = b.lan("S2");
    b.attach(s2, r1);
    let c = b.host("C", s2);
    let net = b.build();
    let core = net.router_addr(r1);
    let group = GroupId::numbered(1);

    println!("spawning 3 router tasks + 3 host tasks on tokio…");
    let live = LiveNet::spawn(net, CbtConfig::fast());

    // Hosts join; the joins race through the concurrent routers.
    live.host_join(a, group, vec![core]);
    live.host_join(bb, group, vec![core]);
    live.host_join(c, group, vec![core]);
    tokio::time::sleep(Duration::from_secs(2)).await;

    for (name, r) in [("R0", r0), ("R1", r1), ("R2", r2)] {
        let snap = live.router_snapshot(r, group).await.expect("router alive");
        println!(
            "  {name}: on_tree={} parent={:?} children={} (echo reqs sent: {})",
            snap.on_tree,
            snap.parent,
            snap.children.len(),
            snap.stats.echo_requests_sent
        );
    }

    println!("\nB transmits; watching deliveries…");
    live.host_send(bb, group, b"live from tokio".to_vec(), 16);
    tokio::time::sleep(Duration::from_secs(1)).await;

    for (name, h) in [("A", a), ("C", c)] {
        let got = live.host_received(h).await.expect("host alive");
        println!(
            "  host {name} received {}: {:?}",
            got.len(),
            got.iter()
                .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
                .collect::<Vec<_>>()
        );
        assert_eq!(got.len(), 1);
    }

    // Let a few echo keepalive rounds pass (fast interval: 3 s).
    println!("\nletting keepalives run for 7s of wall-clock time…");
    tokio::time::sleep(Duration::from_secs(7)).await;
    let snap = live.router_snapshot(r0, group).await.unwrap();
    println!(
        "  R0 sent {} echo requests, detected {} parent failures",
        snap.stats.echo_requests_sent, snap.stats.parent_failures
    );
    assert!(snap.stats.echo_requests_sent >= 2);
    assert_eq!(snap.stats.parent_failures, 0);

    live.shutdown();
    println!("\nok: the same engine that passed the deterministic suite ran live.");
}
