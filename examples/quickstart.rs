//! Quickstart: the smallest complete CBT deployment.
//!
//! Three routers in a row, a receiver on one end, a sender on the
//! other, the middle router as the group's core. Prints every protocol
//! step the spec describes: the IGMP trigger, the hop-by-hop join, the
//! ack retrace, and finally data flowing down the shared tree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Entity, PacketKind, SimTime, WorldConfig};
use cbt_topology::NetworkBuilder;
use cbt_wire::GroupId;

fn main() {
    // 1. Describe the network:  A —[S0]— R0 ——— R1 ——— R2 —[S1]— B
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1"); // will serve as the core
    let r2 = b.router("R2");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let receiver = b.host("A", s0);
    b.link(r0, r1, 1);
    b.link(r1, r2, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r2);
    let sender = b.host("B", s1);
    let net = b.build();

    let core = net.router_addr(r1);
    let group = GroupId::numbered(1);
    println!("network: A —[S0]— R0 —— R1(core {core}) —— R2 —[S1]— B");
    println!("group:   {group}\n");

    // 2. Run it in the deterministic simulator with the spec's §9
    //    timers compressed 10× so the demo finishes instantly.
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(receiver).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(sender).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(sender).send_at(SimTime::from_secs(3), group, b"hello, multicast".to_vec(), 16);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));

    // 3. Show the protocol conversation.
    println!("packet ledger:");
    for e in cw.world.trace().entries() {
        let who = match e.from {
            Entity::Router(r) => cw.net.routers[r.0 as usize].name.clone(),
            Entity::Host(h) => format!("host {}", cw.net.hosts[h.0 as usize].name),
        };
        let what = match e.kind {
            PacketKind::Control(c) => format!("CBT {c:?}"),
            PacketKind::Igmp(i) => format!("IGMP {i:?}"),
            PacketKind::DataNative => "data (native IP multicast)".into(),
            PacketKind::DataCbt => "data (CBT encapsulated)".into(),
            PacketKind::Other => "???".into(),
        };
        println!("  t={:>7.3}s  {:8}  {}", e.at.as_secs_f64(), who, what);
    }

    // 4. Show the resulting tree and the delivery.
    println!("\ntree state:");
    for (name, r) in [("R0", r0), ("R1", r1), ("R2", r2)] {
        let engine = cw.router(r).engine();
        println!(
            "  {name}: on_tree={} parent={:?} children={:?}",
            engine.is_on_tree(group),
            engine.parent_of(group),
            engine.children_of(group),
        );
    }
    let got = cw.host(receiver).received();
    println!("\nhost A received {} packet(s):", got.len());
    for d in got {
        println!(
            "  t={:.3}s from {}: {:?}",
            d.at.as_secs_f64(),
            d.src,
            String::from_utf8_lossy(&d.payload)
        );
    }
    assert_eq!(cw.host(receiver).received().len(), 1, "exactly-once delivery");
    println!("\nok: exactly-once delivery over the shared tree.");
}
