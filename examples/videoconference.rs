//! A multi-sender videoconference on the spec's Figure 1 topology —
//! the workload shared trees were designed for.
//!
//! Every member host both receives and sends (as in a conference call).
//! With per-source trees this would cost one tree *per speaker*; CBT
//! carries all twelve speakers over one shared tree. The example prints
//! the delivery matrix and the per-link data load, making the
//! traffic-concentration trade-off (experiment S93-F2) visible on a
//! real protocol run.
//!
//! ```text
//! cargo run --example videoconference
//! ```

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Medium, SimTime, WorldConfig};
use cbt_topology::figure1;
use cbt_wire::GroupId;

fn main() {
    let fig = figure1();
    let group = GroupId::numbered(1);
    let cores =
        vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())];
    println!("topology: draft-ietf-idmr-cbt-spec Figure 1 (11 routers, 15 subnets)");
    println!("cores:    R4 (primary), R9 (secondary)\n");

    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());

    let speakers = [
        ("A", fig.hosts.a),
        ("B", fig.hosts.b),
        ("C", fig.hosts.c),
        ("E", fig.hosts.e),
        ("G", fig.hosts.g),
        ("H", fig.hosts.h),
        ("J", fig.hosts.j),
        ("K", fig.hosts.k),
    ];
    // Everyone joins at t=1, then each speaker says one line, 500 ms
    // apart.
    for (_, h) in speakers {
        cw.host(h).join_at(SimTime::from_secs(1), group, cores.clone());
    }
    for (i, (name, h)) in speakers.iter().enumerate() {
        let at = SimTime::from_secs(4) + cbt_netsim::SimDuration::from_millis(500 * i as u64);
        cw.host(*h).send_at(at, group, format!("<{name} speaking>").into_bytes(), 32);
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(10));

    // Delivery matrix: every speaker hears every other speaker once.
    println!("delivery matrix (rows hear columns):");
    print!("      ");
    for (name, _) in speakers {
        print!("{name:>4}");
    }
    println!();
    for (me, h) in speakers {
        print!("  {me:>4}");
        let heard = cw.host(h).received().to_vec();
        for (them, other) in speakers {
            if me == them {
                print!("   ·");
                continue;
            }
            let other_addr = cw.host(other).addr();
            let n = heard.iter().filter(|d| d.src == other_addr).count();
            print!("{n:>4}");
        }
        println!();
    }

    // Exactly-once check.
    for (name, h) in speakers {
        let got = cw.host(h).received().len();
        assert_eq!(got, speakers.len() - 1, "{name} heard {got}");
    }
    println!("\nok: every speaker heard every other speaker exactly once.");

    // Traffic concentration: data frames per medium.
    println!("\nper-link data frames (the shared tree concentrates traffic):");
    let mut loads: Vec<(String, u64)> = cw
        .world
        .trace()
        .frames_by_medium()
        .keys()
        .filter_map(|m| {
            let data = cw.world.trace().data_bytes_by_medium().get(m).copied().unwrap_or(0);
            if data == 0 {
                return None;
            }
            let name = match m {
                Medium::Lan(l) => format!("LAN  {}", cw.net.lans[l.0 as usize].name),
                Medium::Link(l) => {
                    let spec = cw.net.links[l.0 as usize];
                    format!(
                        "link {}–{}",
                        cw.net.routers[spec.a.0 as usize].name,
                        cw.net.routers[spec.b.0 as usize].name
                    )
                }
            };
            Some((name, data))
        })
        .collect();
    loads.sort_by_key(|l| std::cmp::Reverse(l.1));
    for (name, bytes) in &loads {
        println!("  {name:16} {bytes:>6} data bytes");
    }
    println!(
        "\nnote how the tree's media all carry comparable load ({}–{} bytes): on a shared tree \
         every speaker's packet crosses every branch — that uniform \"everyone pays\" profile is \
         the traffic concentration trade-off of experiment S93-F2.",
        loads.last().map(|l| l.1).unwrap_or(0),
        loads.first().map(|l| l.1).unwrap_or(0),
    );
}
