//! End-to-end TTL scoping. The unit tests in `crates/core/src/forward.rs`
//! pin the per-hop decrement rules (§4: native forwarding decrements the
//! IP TTL; §5/§8.1: every CBT hop decrements the CBT header's TTL; §5:
//! delivery onto a member subnet forces the inner TTL to one). These
//! tests check the *composition*: across a three-router chain, a
//! sender's TTL draws a radius — near members hear the packet, far
//! members beyond the hop budget do not — identically in native and
//! CBT forwarding modes.

use cbt::{config::ForwardingMode, CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::{Addr, GroupId};

/// A —S0— R0 —— R1(core, Smid: M) —— R2 —S1— B.
/// Data from A crosses three forwarding routers to reach B, two to
/// reach M.
struct Chain {
    net: NetworkSpec,
    core: Addr,
    a: HostId,
    m: HostId,
    b: HostId,
}

fn chain() -> Chain {
    let mut bld = NetworkBuilder::new();
    let r0 = bld.router("R0");
    let r1 = bld.router("R1");
    let r2 = bld.router("R2");
    let s0 = bld.lan("S0");
    bld.attach(s0, r0);
    let a = bld.host("A", s0);
    let smid = bld.lan("Smid");
    bld.attach(smid, r1);
    let m = bld.host("M", smid);
    let s1 = bld.lan("S1");
    bld.attach(s1, r2);
    let b = bld.host("B", s1);
    bld.link(r0, r1, 1);
    bld.link(r1, r2, 1);
    let net = bld.build();
    let core = net.router_addr(RouterId(1));
    Chain { net, core, a, m, b }
}

/// Runs one send with `ttl` from A and reports (M heard, B heard).
fn run_case(mode: ForwardingMode, ttl: u8, sender_joins: bool) -> (bool, bool) {
    let group = GroupId::numbered(1);
    let c = chain();
    let cfg = CbtConfig::fast()
        .with_mode(mode)
        // Managed mapping so a non-member sender's D-DR still knows the
        // core (§5.1).
        .with_mapping(group, vec![c.core]);
    let mut cw = CbtWorld::build(c.net, cfg, WorldConfig::default());
    if sender_joins {
        cw.host(c.a).join_at(SimTime::from_secs(1), group, vec![c.core]);
    }
    cw.host(c.m).join_at(
        SimTime::from_secs(1) + SimDuration::from_millis(150),
        group,
        vec![c.core],
    );
    cw.host(c.b).join_at(
        SimTime::from_secs(1) + SimDuration::from_millis(300),
        group,
        vec![c.core],
    );
    cw.host(c.a).send_at(SimTime::from_secs(5), group, b"scoped".to_vec(), ttl);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(9));
    let mut heard = |h: HostId| cw.host(h).received().iter().any(|d| d.payload == b"scoped");
    (heard(c.m), heard(c.b))
}

/// §4 native mode: M sits two router hops from A, B three. TTL 3
/// reaches M but dies entering R2; TTL 4 reaches both; TTL 1 never
/// leaves the source subnet.
#[test]
fn native_ttl_scopes_delivery() {
    for (ttl, want_m, want_b) in [(1u8, false, false), (3, true, false), (4, true, true)] {
        let (m, b) = run_case(ForwardingMode::Native, ttl, true);
        assert_eq!((m, b), (want_m, want_b), "native ttl={ttl}");
    }
}

/// §5/§8.1 CBT mode: the sender's TTL seeds the CBT header TTL, which
/// every CBT hop decrements — so the scoping radius matches native
/// mode hop for hop.
#[test]
fn cbt_mode_ttl_scopes_delivery() {
    for (ttl, want_m, want_b) in [(1u8, false, false), (3, true, false), (4, true, true)] {
        let (m, b) = run_case(ForwardingMode::CbtMode, ttl, true);
        assert_eq!((m, b), (want_m, want_b), "cbt-mode ttl={ttl}");
    }
}

/// §5.1 non-member sending: A never joins; its D-DR encapsulates
/// toward the core, which decrements once before spanning the tree.
/// The off-tree unicast leg R0→core is plain IP forwarding and does
/// not consume CBT hops, so TTL 2 reaches the core's own subnet (M)
/// but not the subtree behind R2 (B); TTL 3 reaches both.
#[test]
fn nonmember_sender_ttl_scopes_from_the_core() {
    for (ttl, want_m, want_b) in [(2u8, true, false), (3, true, true)] {
        let (m, b) = run_case(ForwardingMode::CbtMode, ttl, false);
        assert_eq!((m, b), (want_m, want_b), "non-member ttl={ttl}");
    }
}
