//! Scale/soak: many groups, many members, five virtual minutes of
//! protocol life on a 60-router topology with background packet loss —
//! then the storm clears and everything must be exactly right: live
//! members attached, dead groups erased everywhere, no stuck
//! transients.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{FaultPlan, SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, AllPairs, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;

#[test]
fn five_virtual_minutes_of_multigroup_churn() {
    let n = 60usize;
    let graph = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, 21);
    let ap = AllPairs::compute(&graph);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);

    // 6 groups; group k's members are routers ≡ k (mod spread), its core
    // the member-medoid.
    let group_count = 6usize;
    let mut plans: Vec<(GroupId, Vec<NodeId>, cbt_wire::Addr)> = Vec::new();
    for k in 0..group_count {
        let members: Vec<NodeId> =
            (0..n).skip(k).step_by(group_count + 2).map(|i| NodeId(i as u32)).take(6).collect();
        let core = ap.medoid(&members).expect("connected");
        let members: Vec<NodeId> = members.into_iter().filter(|m| *m != core).collect();
        plans.push((GroupId::numbered(k as u16), members, net.router_addr(RouterId(core.0))));
    }

    let mut cw = CbtWorld::build(
        net,
        CbtConfig::fast(),
        WorldConfig {
            fault: FaultPlan::drops(0.03),
            seed: 9,
            record_trace: false, // counters only: this run moves a lot of frames
            ..Default::default()
        },
    );

    // Even-numbered groups live forever; odd ones fully depart mid-run.
    for (gi, (group, members, core)) in plans.iter().enumerate() {
        for (mi, m) in members.iter().enumerate() {
            let join =
                SimTime::from_secs(1) + SimDuration::from_millis((gi * 700 + mi * 130) as u64);
            cw.host(HostId(m.0)).join_at(join, *group, vec![*core]);
            if gi % 2 == 1 {
                let leave = SimTime::from_secs(120) + SimDuration::from_millis((mi * 500) as u64);
                cw.host(HostId(m.0)).leave_at(leave, *group);
            }
        }
    }

    cw.world.start();
    cw.world.run_until(SimTime::from_secs(240));
    // Storm over; let everything heal and the IFF-scans run.
    cw.world.set_fault_plan(FaultPlan::none());
    cw.world.run_until(SimTime::from_secs(300));

    for (gi, (group, members, _)) in plans.iter().enumerate() {
        if gi % 2 == 0 {
            // Live group: every member DR attached, no transients.
            for m in members {
                let engine = cw.router(RouterId(m.0)).engine();
                assert!(
                    engine.is_on_tree(*group),
                    "group {group}: member {m} detached at end of soak"
                );
                assert!(!engine.has_pending_join(*group));
            }
        } else {
            // Departed group: zero state anywhere in the network.
            for i in 0..n as u32 {
                let engine = cw.router(RouterId(i)).engine();
                assert!(
                    !engine.is_on_tree(*group),
                    "group {group}: router R{i} leaked state after universal leave"
                );
                assert!(!engine.has_pending_join(*group));
            }
        }
    }

    // Data-plane spot check on every surviving group.
    for (gi, (group, members, _)) in plans.iter().enumerate() {
        if gi % 2 != 0 || members.len() < 2 {
            continue;
        }
        let sender = HostId(members[0].0);
        let receiver = HostId(members[members.len() - 1].0);
        let baseline = cw.host(receiver).received().len();
        let at = cw.world.now();
        cw.host(sender).send_at(at, *group, format!("soak-{gi}").into_bytes(), 64);
        cw.touch_host(sender);
        cw.world.run_for(SimDuration::from_secs(2));
        assert!(
            cw.host(receiver).received().len() > baseline,
            "group {group}: delivery after the soak"
        );
    }
}
