//! Differential test between the two data planes: native mode (§4) and
//! CBT mode (§5) are different encapsulations of the *same* tree, so
//! any scenario must deliver exactly the same payloads to the same
//! hosts in both modes.

use cbt::config::ForwardingMode;
use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, AllPairs, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;
use std::collections::BTreeSet;

/// Runs one randomized scenario in the given mode; returns the complete
/// delivery relation {(receiver host, payload)} plus the per-member
/// copy counts.
fn run_scenario(seed: u64, mode: ForwardingMode) -> (BTreeSet<(u32, Vec<u8>)>, Vec<usize>) {
    let graph = generate::waxman(generate::WaxmanParams { n: 24, ..Default::default() }, seed);
    let ap = AllPairs::compute(&graph);
    let members: Vec<NodeId> = (0..24).step_by(3).map(|i| NodeId(i as u32)).collect();
    let core = ap.medoid(&members).expect("connected");
    let members: Vec<NodeId> = members.into_iter().filter(|m| *m != core).collect();
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core_addr = net.router_addr(RouterId(core.0));
    let group = GroupId::numbered(1);

    // A non-member sender too (exercises §5.1/§5.3 in both modes).
    let non_member = (0..24)
        .map(|i| NodeId(i as u32))
        .find(|n| *n != core && !members.contains(n))
        .expect("spare router");

    let cfg = CbtConfig::fast().with_mode(mode).with_mapping(group, vec![core_addr]);
    let mut cw =
        CbtWorld::build(net, cfg, WorldConfig { record_trace: false, ..Default::default() });
    for (i, m) in members.iter().enumerate() {
        cw.host(HostId(m.0)).join_at(
            SimTime::from_secs(1) + SimDuration::from_millis(100 * i as u64),
            group,
            vec![core_addr],
        );
    }
    // Three member senders + the non-member sender.
    for (k, m) in members.iter().take(3).enumerate() {
        cw.host(HostId(m.0)).send_at(
            SimTime::from_secs(5) + SimDuration::from_millis(300 * k as u64),
            group,
            format!("member-{k}").into_bytes(),
            64,
        );
    }
    cw.host(HostId(non_member.0)).send_at(SimTime::from_secs(7), group, b"outsider".to_vec(), 64);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(10));

    let mut deliveries = BTreeSet::new();
    let mut counts = Vec::new();
    for m in &members {
        let got = cw.host(HostId(m.0)).received();
        counts.push(got.len());
        for d in got {
            deliveries.insert((m.0, d.payload.clone()));
        }
    }
    (deliveries, counts)
}

#[test]
fn native_and_cbt_mode_deliver_identically() {
    for seed in 0..4u64 {
        let (native, native_counts) = run_scenario(seed, ForwardingMode::Native);
        let (cbt, cbt_counts) = run_scenario(seed, ForwardingMode::CbtMode);
        assert_eq!(native, cbt, "seed {seed}: the two §4/§5 data planes disagree on delivery");
        assert_eq!(native_counts, cbt_counts, "seed {seed}: copy counts differ");
        // Sanity: the scenario is non-trivial — every member heard the
        // three member senders they did not originate plus the outsider.
        assert!(!native.is_empty());
        assert!(
            native.iter().any(|(_, p)| p == b"outsider"),
            "seed {seed}: non-member sending must work in both modes"
        );
    }
}
