//! §7 interception: an off-tree encapsulated packet from a non-member
//! sender is grabbed by the FIRST on-tree router its unicast path
//! crosses — it must not travel all the way to the core when the tree
//! is closer.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Entity, PacketKind, SimTime, WorldConfig};
use cbt_topology::{NetworkBuilder, RouterId};
use cbt_wire::GroupId;

/// sender —[Ssnd]— Rsnd — Rmid — Rcore, receiver —[Srcv]— Rmid.
///
/// The receiver's branch is Rmid—Rcore... no: receiver's DR is Rmid,
/// which joins the core directly, so **Rmid is on-tree**. The
/// non-member sender's DR (Rsnd) encapsulates toward the core; the
/// packet's unicast path is Rsnd → Rmid → Rcore. §7 says Rmid — on-tree
/// — intercepts, marks on-tree, and delivers to the receiver without
/// the core ever seeing a data packet travel back down.
#[test]
fn first_on_tree_router_intercepts_non_member_data() {
    let mut b = NetworkBuilder::new();
    let r_snd = b.router("Rsnd");
    let r_mid = b.router("Rmid");
    let r_core = b.router("Rcore");
    let s_snd = b.lan("Ssnd");
    b.attach(s_snd, r_snd);
    let sender = b.host("SND", s_snd);
    b.link(r_snd, r_mid, 1);
    b.link(r_mid, r_core, 1);
    let s_rcv = b.lan("Srcv");
    b.attach(s_rcv, r_mid);
    let receiver = b.host("RCV", s_rcv);
    let net = b.build();
    let core = net.router_addr(r_core);
    let group = GroupId::numbered(1);

    // CBT mode so the §7 on-tree bit is on the wire; the sender's group
    // mapping comes from managed configuration (§5.1).
    let cfg = CbtConfig::fast()
        .with_mode(cbt::config::ForwardingMode::CbtMode)
        .with_mapping(group, vec![core]);
    let mut cw = CbtWorld::build(net, cfg, WorldConfig::default());
    cw.host(receiver).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(sender).send_at(SimTime::from_secs(3), group, b"intercepted".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));

    // Delivered exactly once.
    let got = cw.host(receiver).received();
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].payload, b"intercepted");

    // §7 evidence: Rmid intercepted. Count CBT-mode data frames by
    // sender: Rsnd sent the off-tree unicast (1). If Rmid intercepted,
    // it spans the tree *from itself*: it still owes the parent (core)
    // a copy, but the core must NOT send any data frame back down —
    // delivery happened at Rmid directly.
    let data_from = |r: RouterId| {
        cw.world
            .trace()
            .entries()
            .iter()
            .filter(|e| e.from == Entity::Router(r) && e.kind.is_data())
            .count()
    };
    assert!(data_from(r_snd) >= 1, "sender DR encapsulated");
    assert!(data_from(r_mid) >= 1, "Rmid forwarded (intercepted)");
    assert_eq!(
        data_from(r_core),
        0,
        "the core received its tree copy but had nothing further to send"
    );
    // The receiver-facing copy was a decapsulated native multicast.
    assert!(cw.world.trace().count(PacketKind::DataNative) >= 1);
    assert!(cw.world.trace().count(PacketKind::DataCbt) >= 1);
}
