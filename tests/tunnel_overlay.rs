//! §5.2 — CBT in a virtual (tunnel) topology without a multicast
//! topology-discovery protocol: "routing is replaced by 'ranking' each
//! tunnel interface associated with a particular core address; if the
//! highest-ranked route is unavailable then the next-highest ranked
//! available route is selected."
//!
//! The engine's only routing dependency is the `RouteLookup` trait, so
//! an overlay deployment simply plugs a ranked-tunnel table in where a
//! converged IGP would normally sit. This test drives a real engine
//! through the spec's worked example: primary tunnel up → join through
//! it; primary down (Hello timeout) → re-join through the backup.

use cbt::{CbtConfig, CbtRouter, RouteLookup, RouterAction};
use cbt_netsim::SimTime;
use cbt_routing::{Hop, RankedTunnels, TunnelState};
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::{AckSubcode, Addr, ControlMessage, GroupId, IgmpMessage, JoinSubcode};
use parking_lot::RwLock;
use std::sync::Arc;

/// A §5.2 overlay route provider: per-core ranked tunnel interfaces
/// with liveness, plus the remote endpoint of each tunnel.
struct TunnelRoutes {
    ranking: Arc<RwLock<RankedTunnels>>,
    /// iface → (remote tunnel endpoint address, peer router id).
    endpoints: Vec<(Addr, RouterId)>,
}

impl RouteLookup for TunnelRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        // §5.2: the core's ranked interface list *is* the routing table.
        let iface = self.ranking.read().select(dst)?;
        let (addr, router) = self.endpoints.get(iface.0 as usize).copied()?;
        Some(Hop { iface, router, addr, dist: 1 })
    }
}

fn group() -> GroupId {
    GroupId::numbered(1)
}

fn core_a() -> Addr {
    Addr::from_octets(10, 255, 0, 40)
}

/// An engine whose two p2p interfaces are configured as tunnels to the
/// same core, ranked primary-then-backup.
fn overlay_engine() -> (CbtRouter, Arc<RwLock<RankedTunnels>>) {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let peer1 = b.router("T1"); // primary tunnel remote
    let peer2 = b.router("T2"); // backup tunnel remote
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, peer1, 1); // iface 1
    b.link(me, peer2, 1); // iface 2
    let net = b.build();

    let mut ranking = RankedTunnels::new();
    // Spec example: "core A: #5, #2" — here core_a ranks iface 1 then 2.
    ranking.set_ranking(core_a(), vec![IfIndex(1), IfIndex(2)]);
    let ranking = Arc::new(RwLock::new(ranking));
    let routes = TunnelRoutes {
        ranking: ranking.clone(),
        endpoints: vec![
            (Addr::NULL, RouterId(0)), // iface 0 is the LAN
            (Addr::from_octets(172, 31, 0, 2), peer1),
            (Addr::from_octets(172, 31, 0, 6), peer2),
        ],
    };
    let e = CbtRouter::new(&net, me, CbtConfig::fast(), Box::new(routes), SimTime::ZERO);
    (e, ranking)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn join_sent_on(act: &[RouterAction]) -> Option<(IfIndex, Addr)> {
    act.iter().find_map(|a| match a {
        RouterAction::SendControl { iface, dst, msg: ControlMessage::JoinRequest { .. } } => {
            Some((*iface, *dst))
        }
        _ => None,
    })
}

#[test]
fn join_uses_highest_ranked_live_tunnel() {
    let (mut e, _ranking) = overlay_engine();
    e.learn_cores(group(), &[core_a()]);
    let act = e.handle_igmp(
        t(1),
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        IgmpMessage::Report { version: 3, group: group() },
    );
    let (iface, dst) = join_sent_on(&act).expect("join sent");
    assert_eq!(iface, IfIndex(1), "primary tunnel chosen");
    assert_eq!(dst, Addr::from_octets(172, 31, 0, 2));
}

#[test]
fn hello_timeout_fails_over_to_backup_tunnel() {
    let (mut e, ranking) = overlay_engine();
    e.learn_cores(group(), &[core_a()]);
    // Join and complete over the primary tunnel.
    e.handle_igmp(
        t(1),
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        IgmpMessage::Report { version: 3, group: group() },
    );
    e.handle_control(
        t(1),
        IfIndex(1),
        Addr::from_octets(172, 31, 0, 2),
        ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group: group(),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: core_a(),
            cores: vec![core_a()],
        },
    );
    assert_eq!(e.parent_of(group()), Some(Addr::from_octets(172, 31, 0, 2)));

    // The tunnel's Hello protocol declares the primary down (§5.2);
    // echoes stop being answered, and at the echo timeout the engine
    // re-joins — the ranked table now yields the backup.
    ranking.write().set_state(IfIndex(1), TunnelState::Down);
    let mut rejoin = None;
    for s in 2..=30u64 {
        let act = e.on_timer(t(s));
        if let Some(hop) = join_sent_on(&act) {
            rejoin = Some(hop);
            break;
        }
    }
    let (iface, dst) = rejoin.expect("re-join fired after the echo timeout");
    assert_eq!(iface, IfIndex(2), "backup tunnel selected (§5.2 worked example)");
    assert_eq!(dst, Addr::from_octets(172, 31, 0, 6));

    // Ack over the backup re-attaches the branch.
    e.handle_control(
        t(31),
        IfIndex(2),
        Addr::from_octets(172, 31, 0, 6),
        ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group: group(),
            origin: e.id_addr(),
            target_core: core_a(),
            cores: vec![core_a()],
        },
    );
    assert_eq!(e.parent_of(group()), Some(Addr::from_octets(172, 31, 0, 6)));
}

#[test]
fn all_tunnels_down_means_no_join_until_recovery() {
    let (mut e, ranking) = overlay_engine();
    e.learn_cores(group(), &[core_a()]);
    ranking.write().set_state(IfIndex(1), TunnelState::Down);
    ranking.write().set_state(IfIndex(2), TunnelState::Down);
    let act = e.handle_igmp(
        t(1),
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        IgmpMessage::Report { version: 3, group: group() },
    );
    assert!(join_sent_on(&act).is_none(), "nowhere to send the join");
    assert!(!e.has_pending_join(group()));

    // Hellos return on the backup; the IFF-scan retries the orphaned
    // membership (fast: 30 s). The host keeps answering the periodic
    // queries, refreshing presence while the tunnels are dark.
    ranking.write().set_state(IfIndex(2), TunnelState::Up);
    let mut sent = None;
    for s in 2..=40u64 {
        if s % 10 == 0 {
            e.handle_igmp(
                t(s),
                IfIndex(0),
                Addr::from_octets(10, 1, 0, 100),
                IgmpMessage::Report { version: 3, group: group() },
            );
        }
        if let Some(hop) = join_sent_on(&e.on_timer(t(s))) {
            sent = Some(hop);
            break;
        }
    }
    assert_eq!(sent, Some((IfIndex(2), Addr::from_octets(172, 31, 0, 6))));
    let _ = JoinSubcode::ActiveJoin; // referenced for readers
}
