//! Replay/duplicate robustness: real networks duplicate and reorder
//! packets; every CBT control message must be idempotent or explicitly
//! guarded (the §2.5 pending-join cache, ack matching, quit re-acks).

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Entity, PacketKind, SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::{ControlType, GroupId};

fn chain() -> (NetworkSpec, [RouterId; 3], HostId, HostId) {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let r2 = b.router("R2");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let a = b.host("A", s0);
    b.link(r0, r1, 1);
    b.link(r1, r2, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r2);
    let c = b.host("C", s1);
    (b.build(), [r0, r1, r2], a, c)
}

/// A duplicated IGMP join (host re-reports) must not produce duplicate
/// joins, duplicate FIB children or duplicate deliveries.
#[test]
fn duplicate_reports_are_idempotent() {
    let (net, [r0, r1, _r2], a, c) = chain();
    let core = net.router_addr(r1);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    // The same host "joins" three times in quick succession.
    for k in 0..3u64 {
        cw.host(a).join_at(
            SimTime::from_secs(1) + SimDuration::from_millis(50 * k),
            group,
            vec![core],
        );
    }
    cw.host(c).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(c).send_at(SimTime::from_secs(3), group, b"once".to_vec(), 16);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));

    assert_eq!(cw.host(a).received().len(), 1, "exactly one delivery");
    let core_children = cw.router(r1).engine().children_of(group);
    assert_eq!(core_children.len(), 2, "one child per branch, no duplicates");
    // R0 originated at most... the §2.6 rule: a pending join absorbs
    // re-triggers, so exactly one join went upstream from R0.
    assert_eq!(cw.router(r0).engine().stats().joins_originated, 1);
}

/// A leave followed by an immediate re-join (membership flapping) ends
/// attached, with state consistent at every router.
#[test]
fn leave_rejoin_flapping_settles_attached() {
    let (net, [r0, r1, _r2], a, _c) = chain();
    let core = net.router_addr(r1);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
    // Flap: leave at 4, rejoin at 5, leave at 6, rejoin at 7.
    cw.host(a).leave_at(SimTime::from_secs(4), group);
    cw.host(a).join_at(SimTime::from_secs(5), group, vec![core]);
    cw.host(a).leave_at(SimTime::from_secs(6), group);
    cw.host(a).join_at(SimTime::from_secs(7), group, vec![core]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(20));

    assert!(cw.host(a).is_member(group));
    assert!(cw.router(r0).engine().is_on_tree(group), "final state: attached");
    assert!(!cw.router(r0).engine().has_pending_join(group));
    let children = cw.router(r1).engine().children_of(group);
    assert_eq!(children.len(), 1, "exactly one branch to R0: {children:?}");
}

/// Quit retransmissions (lost QUIT_ACKs) do not confuse a parent that
/// already removed the child — it re-acks and nothing else changes.
#[test]
fn repeated_quits_are_reacked_harmlessly() {
    let (net, [r0, r1, _r2], a, _c) = chain();
    let core = net.router_addr(r1);
    let group = GroupId::numbered(1);
    // Drop ~40% of packets so quit-acks get lost and quits retransmit.
    let mut cw = CbtWorld::build(
        net,
        CbtConfig::fast(),
        WorldConfig { fault: cbt_netsim::FaultPlan::drops(0.4), seed: 4, ..Default::default() },
    );
    cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(a).leave_at(SimTime::from_secs(8), group);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(20));
    cw.world.set_fault_plan(cbt_netsim::FaultPlan::none());
    cw.world.run_until(SimTime::from_secs(40));

    // However many quits it took, the end state is clean on both sides.
    assert!(!cw.router(r0).engine().is_on_tree(group));
    assert!(cw.router(r1).engine().children_of(group).is_empty());
    // Quit-acks were produced for retransmissions too (when the quits
    // got through at all).
    let quits = cw.world.trace().count(PacketKind::Control(ControlType::QuitRequest));
    let acks = cw.world.trace().count(PacketKind::Control(ControlType::QuitAck));
    assert!(quits >= 1);
    assert!(acks <= quits, "never more acks than quits");
}

/// The -02 draft's teardown narrative, under -03 mechanics: "assume
/// member E leaves ... R7 registers no further group presence ... R7
/// sends a QUIT_REQUEST to R4. R4 has children AND subnets with group
/// presence, and so does not itself attempt to quit."
#[test]
fn v02_narrative_e_leaves_r7_quits_r4_stays() {
    use cbt_topology::figure1;
    let fig = figure1();
    let group = GroupId::numbered(1);
    let cores =
        vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())];
    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    // Members: E on S9 (behind R7), D on S5 (directly on core R4), A on
    // S1 — so R4 keeps both a child (R3) and member subnets after E goes.
    cw.host(fig.hosts.e).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(fig.hosts.d).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(fig.hosts.a).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(fig.hosts.e).leave_at(SimTime::from_secs(4), group);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(10));

    let r7 = fig.router(7);
    let r4 = fig.router(4);
    assert!(!cw.router(r7).engine().is_on_tree(group), "R7 quit after E left");
    assert!(cw.router(r7).engine().stats().quits_sent >= 1);
    let r4_engine = cw.router(r4).engine();
    assert!(r4_engine.is_on_tree(group), "R4 stays: children and member subnets remain");
    assert!(!r4_engine.children_of(group).is_empty());
    // And R7 is no longer among R4's children.
    let r7_events = cw
        .world
        .trace()
        .entries()
        .iter()
        .filter(|e| {
            e.from == Entity::Router(r7)
                && matches!(e.kind, PacketKind::Control(ControlType::QuitRequest))
        })
        .count();
    assert!(r7_events >= 1, "the quit is visible on the wire");
}
