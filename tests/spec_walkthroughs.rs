//! Spec walkthroughs (experiments Spec-E1..E6 in DESIGN.md): the
//! protocol narratives of draft-ietf-idmr-cbt-spec-03 §2.5–§2.7, §5 and
//! §6.3, replayed packet-for-packet on the reconstructed Figure 1 and
//! Figure 5 topologies.

use cbt::{CbtConfig, CbtWorld, HostApp, RouterNode};
use cbt_netsim::{Entity, PacketKind, SimTime, WorldConfig};
use cbt_topology::{figure1, figure5_loop, Figure1, RouterId};
use cbt_wire::{Addr, ControlType, GroupId};

const GROUP: GroupId = GroupId::numbered(1);

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Stands up Figure 1 with R4 as primary core and R9 as secondary, as
/// in the spec's running example.
fn figure1_world(cfg: CbtConfig) -> (CbtWorld, Figure1) {
    let fig = figure1();
    let cw = CbtWorld::build(fig.net.clone(), cfg, WorldConfig::default());
    (cw, fig)
}

fn cores(fig: &Figure1) -> Vec<Addr> {
    vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())]
}

/// The address a parent/child relationship would use: `of`'s interface
/// address on the subnet it shares with `seen_from`'s route.
fn link_addr_between(fig: &Figure1, of: RouterId, toward: RouterId) -> Addr {
    // Find the p2p link between the two routers and return `of`'s
    // address on it.
    let net = &fig.net;
    for (j, l) in net.links.iter().enumerate() {
        let pair = (l.a, l.b);
        if pair == (of, toward) || pair == (toward, of) {
            let subnet = Addr::from_octets(172, 31, (j / 64) as u8, ((j % 64) * 4) as u8);
            return net.routers[of.0 as usize]
                .ifaces
                .iter()
                .find(|i| i.subnet == subnet)
                .expect("link iface")
                .addr;
        }
    }
    panic!("no link between {of} and {toward}");
}

/// Spec-E1 (§2.5): host A joins; the branch S1–R1–R3–R4 forms, the ack
/// retraces the join, and A hears the tree-joined notification.
#[test]
fn e1_host_a_join_builds_r1_r3_r4_branch() {
    let (mut cw, fig) = figure1_world(CbtConfig::fast());
    let a = fig.hosts.a;
    cw.host(a).join_at(t(1), GROUP, cores(&fig));
    cw.world.start();
    cw.world.run_until(t(4));

    let r1 = fig.router(1);
    let r3 = fig.router(3);
    let r4 = fig.router(4);

    // R1 is on-tree with parent R3.
    let r1_engine = cw.router(r1).engine();
    assert!(r1_engine.is_on_tree(GROUP));
    assert_eq!(
        r1_engine.parent_of(GROUP),
        Some(link_addr_between(&fig, r3, r1)),
        "R1's parent is R3 (§2.5)"
    );
    // R3 is on-tree: parent R4, child R1.
    let r3_engine = cw.router(r3).engine();
    assert_eq!(r3_engine.parent_of(GROUP), Some(link_addr_between(&fig, r4, r3)));
    assert_eq!(r3_engine.children_of(GROUP), vec![link_addr_between(&fig, r1, r3)]);
    // R4 is the primary core: on-tree, no parent, child R3.
    let r4_engine = cw.router(r4).engine();
    assert!(r4_engine.is_on_tree(GROUP));
    assert_eq!(r4_engine.parent_of(GROUP), None, "the primary core has no parent (§5)");
    assert_eq!(r4_engine.children_of(GROUP), vec![link_addr_between(&fig, r3, r4)]);
    // Exactly two join hops were needed: R1→R3, R3→R4.
    let joins = cw.world.trace().count(PacketKind::Control(ControlType::JoinRequest));
    assert_eq!(joins, 2, "join processed hop-by-hop, once per hop");
    let acks = cw.world.trace().count(PacketKind::Control(ControlType::JoinAck));
    assert_eq!(acks, 2, "ack retraces the same two hops");
    // Host A heard the §2.5 notification.
    assert_eq!(cw.host(a).tree_joined_events().len(), 1);
    // No other router gained any state.
    for n in [2usize, 5, 6, 7, 8, 9, 10, 12] {
        let r = fig.router(n);
        assert!(!cw.router(r).engine().is_on_tree(GROUP), "R{n} must hold no state for the group");
    }
}

/// Spec-E2 (§2.6): B joins on S4. R6 (D-DR) originates via R2 on the
/// same subnet; R3 terminates the join; R2 proxy-acks R6 and becomes
/// the G-DR; R6 ends up with no FIB entry.
#[test]
fn e2_proxy_ack_on_s4() {
    let (mut cw, fig) = figure1_world(CbtConfig::fast());
    cw.host(fig.hosts.a).join_at(t(1), GROUP, cores(&fig));
    cw.host(fig.hosts.b).join_at(t(3), GROUP, cores(&fig));
    cw.world.start();
    cw.world.run_until(t(6));

    let r2 = fig.router(2);
    let r3 = fig.router(3);
    let r6 = fig.router(6);

    // R6 was the D-DR that originated, but holds no state (§2.6).
    let r6_engine = cw.router(r6).engine();
    assert!(!r6_engine.is_on_tree(GROUP), "D-DR keeps no FIB entry after proxy-ack");
    assert!(!r6_engine.has_pending_join(GROUP));
    assert!(r6_engine.stats().joins_originated >= 1, "R6 did originate the join");

    // R2 is on-tree, parent R3, no children: it is the LAN's G-DR.
    let s4_iface = {
        let s4 = fig.subnet(4);
        fig.net.routers[r2.0 as usize].iface_on_lan(s4).unwrap().0
    };
    let r2_node = cw.router(r2);
    let r2_engine = r2_node.engine();
    assert!(r2_engine.is_on_tree(GROUP));
    assert_eq!(r2_engine.parent_of(GROUP), Some(link_addr_between(&fig, r3, r2)));
    assert!(r2_engine.children_of(GROUP).is_empty(), "proxy-ack adds no child");
    assert!(r2_engine.is_gdr(s4_iface, GROUP), "R2 is the group-specific DR for S4");
    assert_eq!(r2_engine.stats().proxy_acks_sent, 1);

    // R3 terminated B's join (it was already on-tree from A's join):
    // its children are now R1 and R2.
    let r3_children = cw.router(r3).engine().children_of(GROUP);
    assert_eq!(r3_children.len(), 2);
    assert!(r3_children.contains(&link_addr_between(&fig, fig.router(1), r3)));
    assert!(r3_children.contains(&link_addr_between(&fig, r2, r3)));
}

/// Spec-E3 (§2.7): B leaves S4. The querier (R6) sends the
/// group-specific query; nobody answers; R2 (G-DR, no children, no
/// other member subnets) quits to R3; R3 still has child R1 so it
/// stays.
#[test]
fn e3_teardown_quit_from_r2() {
    let (mut cw, fig) = figure1_world(CbtConfig::fast());
    cw.host(fig.hosts.a).join_at(t(1), GROUP, cores(&fig));
    cw.host(fig.hosts.b).join_at(t(3), GROUP, cores(&fig));
    cw.host(fig.hosts.b).leave_at(t(6), GROUP);
    cw.world.start();
    cw.world.run_until(t(12));

    let r2 = fig.router(2);
    let r3 = fig.router(3);
    // R2 has quit.
    assert!(!cw.router(r2).engine().is_on_tree(GROUP), "branch R3–R2 torn down");
    assert!(cw.router(r2).engine().stats().quits_sent >= 1);
    // R3 keeps its entry: R1 is still a child.
    let r3_engine = cw.router(r3).engine();
    assert!(r3_engine.is_on_tree(GROUP), "R3 cannot quit (§2.7: it has children)");
    assert_eq!(r3_engine.children_of(GROUP), vec![link_addr_between(&fig, fig.router(1), r3)]);
    // The group-specific query went out on S4.
    assert!(cw.world.trace().count(PacketKind::Igmp(cbt_wire::IgmpType::MembershipQuery)) > 0);
}

/// Joins all twelve Figure 1 member hosts.
fn join_everyone(cw: &mut CbtWorld, fig: &Figure1, at: SimTime) {
    let hosts = [
        fig.hosts.a,
        fig.hosts.b,
        fig.hosts.c,
        fig.hosts.d,
        fig.hosts.e,
        fig.hosts.f,
        fig.hosts.g,
        fig.hosts.h,
        fig.hosts.i,
        fig.hosts.j,
        fig.hosts.k,
        fig.hosts.l,
    ];
    let cores = cores(fig);
    for h in hosts {
        cw.host(h).join_at(at, GROUP, cores.clone());
    }
}

/// Spec-E4 (§5): with every subnet joined, member G on S10 sends one
/// packet; every other member receives it exactly once, and the tree
/// shape matches the walkthrough (R8's children R9 and R12; R4's
/// children R3, R7 and R8 present as tree edges).
#[test]
fn e4_data_walkthrough_from_g_native_mode() {
    let (mut cw, fig) = figure1_world(CbtConfig::fast());
    join_everyone(&mut cw, &fig, t(1));
    cw.host(fig.hosts.g).send_at(t(5), GROUP, b"from G".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(t(8));

    // Delivery: everyone but G got exactly one copy.
    for (name, h) in [
        ("A", fig.hosts.a),
        ("B", fig.hosts.b),
        ("C", fig.hosts.c),
        ("D", fig.hosts.d),
        ("E", fig.hosts.e),
        ("F", fig.hosts.f),
        ("H", fig.hosts.h),
        ("I", fig.hosts.i),
        ("J", fig.hosts.j),
        ("K", fig.hosts.k),
        ("L", fig.hosts.l),
    ] {
        let got = cw.host(h).received();
        assert_eq!(got.len(), 1, "host {name} must receive exactly one copy, got {got:?}");
        assert_eq!(got[0].payload, b"from G");
    }
    assert!(cw.host(fig.hosts.g).received().is_empty(), "G does not hear itself");

    // Tree shape per the walkthrough.
    let r4 = fig.router(4);
    let r8 = fig.router(8);
    let r4_children = cw.router(r4).engine().children_of(GROUP);
    assert_eq!(r4_children.len(), 3, "R4's children: R3, R7, R8 — got {r4_children:?}");
    for n in [3usize, 7, 8] {
        assert!(r4_children.contains(&link_addr_between(&fig, fig.router(n), r4)), "R{n}");
    }
    let r8_children = cw.router(r8).engine().children_of(GROUP);
    assert_eq!(r8_children.len(), 2, "R8's children: R9 and R12");
    for n in [9usize, 12] {
        assert!(r8_children.contains(&link_addr_between(&fig, fig.router(n), r8)));
    }
    // R9 (the secondary core) is on the shared tree with parent R8 —
    // exactly the §5 upstream direction G's packet used.
    assert_eq!(
        cw.router(fig.router(9)).engine().parent_of(GROUP),
        Some(link_addr_between(&fig, r8, fig.router(9)))
    );
    // R10 serves both S13 and S15.
    let r10 = fig.router(10);
    assert_eq!(
        cw.router(r10).engine().parent_of(GROUP),
        Some(link_addr_between(&fig, fig.router(9), r10))
    );
}

/// Spec-E4 in CBT mode: same delivery result, but the branches carry
/// CBT-encapsulated packets (§5).
#[test]
fn e4_data_walkthrough_cbt_mode() {
    let (mut cw, fig) =
        figure1_world(CbtConfig::fast().with_mode(cbt::config::ForwardingMode::CbtMode));
    join_everyone(&mut cw, &fig, t(1));
    cw.host(fig.hosts.g).send_at(t(5), GROUP, b"cbt".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(t(8));

    for h in [
        fig.hosts.a,
        fig.hosts.b,
        fig.hosts.c,
        fig.hosts.d,
        fig.hosts.e,
        fig.hosts.f,
        fig.hosts.h,
        fig.hosts.i,
        fig.hosts.j,
        fig.hosts.k,
        fig.hosts.l,
    ] {
        assert_eq!(cw.host(h).received().len(), 1);
    }
    // The tree's p2p branches carried CBT-mode encapsulation.
    assert!(
        cw.world.trace().count(PacketKind::DataCbt) >= 6,
        "R8→R4, R8→R9, R8→R12, R9→R10, R4→R3, R4→R7, R3→R1, R3→R2 are CBT unicasts"
    );
}

/// Spec-E6 (§6.1): R8 dies. R9 (with child R10 and the secondary-core
/// role) re-attaches; every member below R9 keeps receiving data after
/// the reconnect; the §9 fast-timer budget is respected.
#[test]
fn e6_parent_failure_reattach() {
    let (mut cw, fig) = figure1_world(CbtConfig::fast());
    join_everyone(&mut cw, &fig, t(1));
    cw.world.start();
    cw.world.run_until(t(5));
    // Sanity: J (S15, behind R10 under R9 under R8) is reachable.
    cw.host(fig.hosts.a).send_at(t(5), GROUP, b"before".to_vec(), 32);
    cw.touch_host(fig.hosts.a);
    cw.world.run_until(t(7));
    assert_eq!(cw.host(fig.hosts.j).received().len(), 1);

    // Kill R8. R9's echoes to it will time out (fast: 9 s), then R9
    // rejoins via an alternate path... but R8 was the only physical
    // path from R9's side to the rest — so instead kill R12's parent
    // link scenario is not informative. R8 down partitions S10-side:
    // R9 becomes the serving core for its side (it IS the secondary
    // core). What must hold: members under R9 (H, J via R10) keep a
    // working shared tree rooted at R9 itself.
    cw.fail_router(fig.router(8));
    cw.world.run_until(t(30));

    // R9, as secondary core, is now parentless but on-tree.
    let r9_engine = cw.router(fig.router(9)).engine();
    assert!(r9_engine.is_on_tree(GROUP));
    // R10 is still its child, so H and J still receive data sourced
    // below R9.
    cw.host(fig.hosts.h).send_at(t(30), GROUP, b"island".to_vec(), 32);
    cw.touch_host(fig.hosts.h);
    cw.world.run_until(t(33));
    let j_got = cw.host(fig.hosts.j).received();
    assert!(
        j_got.iter().any(|d| d.payload == b"island"),
        "members on R9's island still share a tree: {j_got:?}"
    );
}

/// Spec-E5 (§6.3 + Figure 5): the transient-routing loop is detected by
/// the NACTIVE walk and broken with a QUIT; after routing converges the
/// tree heals.
#[test]
fn e5_loop_detection_and_recovery() {
    let fig = figure5_loop();
    let net = fig.net.clone();
    let r = |n: usize| fig.router(n);
    let core = net.router_addr(r(1));
    let group = GROUP;

    let mut cw = CbtWorld::build(net.clone(), CbtConfig::fast(), WorldConfig::default());
    // Build the chain R1–R2–R3–R4–R5 by joining the host behind R5.
    let h5 = cbt_topology::HostId(4); // hosts H1..H6 indexed 0..5
    cw.host(h5).join_at(t(1), group, vec![core]);
    cw.world.start();
    cw.world.run_until(t(4));
    for (parent, child) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
        let c = cw.router(r(child)).engine();
        assert_eq!(
            c.parent_of(group),
            Some(link_addr_between_net(&net, r(parent), r(child))),
            "chain link R{parent}→R{child}"
        );
    }

    // Now the §6.3 scenario: R3's path to R1 breaks (link R2–R3), but
    // R3 and R6 hold the *stale* opinions "R1 via R6" / "R1 via R5".
    let link_r2_r3 = cbt_topology::LinkId(1); // second link created
    cw.world.failures_mut().fail_link(link_r2_r3);
    {
        let mut rib = cw.rib.write();
        rib.set_override(r(3), r(1), r(6));
        rib.set_override(r(6), r(1), r(5));
    }
    // R3's echoes to R2 now die; after the fast echo timeout it sends
    // REJOIN_ACTIVE (it has child R4) toward R6 — the loop forms and
    // must be broken.
    cw.world.run_until(t(25));
    let r3_stats = cw.router(r(3)).engine().stats();
    assert!(r3_stats.loops_broken >= 1, "§6.3 loop detected and broken: {r3_stats:?}");
    // No data may loop: while routing stays stale every rejoin attempt
    // loops and is broken, so R3 must never hold a settled parent
    // toward R6 (the looping direction). And §6.1's RECONNECT-TIMEOUT
    // bounds the campaign: R3 cannot still be churning through
    // flush/rejoin cycles at t=25 — its campaign (budget
    // `expire_pending_join` = 9 s fast) has expired and the subtree
    // was flushed downstream to fend for itself.
    let r3_parent = cw.router(r(3)).engine().parent_of(group);
    assert_ne!(
        r3_parent,
        Some(link_addr_between_net(&net, r(6), r(3))),
        "R3 must not rest attached through the stale loop via R6"
    );
    assert!(
        cw.router(r(3)).engine().children_of(group).is_empty(),
        "§6.1: past RECONNECT-TIMEOUT the subtree below R3 is flushed"
    );

    // Routing converges: link restored, overrides dropped.
    cw.world.failures_mut().restore_link(link_r2_r3);
    {
        let mut rib = cw.rib.write();
        rib.clear_override(r(3), r(1));
        rib.clear_override(r(6), r(1));
    }
    cw.recompute_routes();
    cw.world.run_until(t(60));
    // The tree heals: R3's parent is R2 again...
    assert_eq!(
        cw.router(r(3)).engine().parent_of(group),
        Some(link_addr_between_net(&net, r(2), r(3))),
        "after convergence R3 re-attaches through R2"
    );
    // ...and data from a host behind the core reaches H5.
    let h1 = cbt_topology::HostId(0);
    cw.host(h1).send_at(t(60), group, b"healed".to_vec(), 32);
    cw.touch_host(h1);
    cw.world.run_until(t(63));
    let got = cw.host(h5).received();
    assert!(got.iter().any(|d| d.payload == b"healed"), "delivery after heal: {got:?}");
}

/// Helper for non-Figure1 networks.
fn link_addr_between_net(net: &cbt_topology::NetworkSpec, of: RouterId, toward: RouterId) -> Addr {
    for (j, l) in net.links.iter().enumerate() {
        let pair = (l.a, l.b);
        if pair == (of, toward) || pair == (toward, of) {
            let subnet = Addr::from_octets(172, 31, (j / 64) as u8, ((j % 64) * 4) as u8);
            return net.routers[of.0 as usize]
                .ifaces
                .iter()
                .find(|i| i.subnet == subnet)
                .expect("link iface")
                .addr;
        }
    }
    panic!("no link between {of} and {toward}");
}

/// Bonus: IGMPv1 hosts (§2.4) still get service through managed
/// mappings — no RP/Core-Report exists, the DR's configuration supplies
/// the cores.
#[test]
fn igmpv1_host_served_via_managed_mapping() {
    let fig = figure1();
    let cores = vec![fig.net.router_addr(fig.primary_core())];
    let cfg = CbtConfig::fast().with_mapping(GROUP, cores.clone());
    let mut cw = CbtWorld::build_with_igmp_versions(
        fig.net.clone(),
        cfg,
        WorldConfig::default(),
        |_| 1, // every host speaks IGMPv1
    );
    cw.host(fig.hosts.a).join_at(t(1), GROUP, vec![]); // v1: no core report possible
    cw.host(fig.hosts.g).send_at(t(4), GROUP, b"v1".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(t(7));
    assert!(cw.router(fig.router(1)).engine().is_on_tree(GROUP));
    assert_eq!(cw.host(fig.hosts.a).received().len(), 1, "delivery to the v1 host");
}

/// Determinism: the full E4 walkthrough replays identically.
#[test]
fn walkthroughs_are_deterministic() {
    let run = || {
        let (mut cw, fig) = figure1_world(CbtConfig::fast());
        join_everyone(&mut cw, &fig, t(1));
        cw.host(fig.hosts.g).send_at(t(5), GROUP, b"x".to_vec(), 32);
        cw.world.start();
        cw.world.run_until(t(8));
        let totals = cw.world.trace().totals();
        let kinds = cw.world.trace().kind_counts();
        (totals, format!("{kinds:?}"))
    };
    assert_eq!(run(), run());
}

// Silence "unused import" notes for items used only in some cfgs.
#[allow(dead_code)]
fn _type_plumbing(_: &RouterNode, _: &HostApp, _: Entity) {}
