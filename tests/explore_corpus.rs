//! Golden counterexample corpus: every `tests/corpus/*.cex` file is a
//! `cbt-cex v1` record (scenario, seed, shard count, fault schedule
//! and verdict) that must replay **byte-identically** — parse →
//! re-render must reproduce the file, and re-executing the run must
//! reproduce the recorded verdict, both under the recorded shard count
//! and under `CBT_SHARDS=2`-style sharding. The corpus pins the replay
//! contract of the exploration harness: if a scenario script, the
//! fault-injector sequence numbering, or the engine's healing behavior
//! drifts, these fail before the search itself ever runs.
//!
//! Regenerate after an *intentional* contract change with
//! `cargo test --test explore_corpus regenerate_corpus -- --ignored`.

use cbt::explore::{Counterexample, Fault, Schedule};
use cbt_netsim::{SimDuration, SimTime};
use cbt_topology::{LanId, LinkId, RouterId};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn dur(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// The golden schedules, one per protocol situation worth pinning:
/// core crash (§6.1 re-attachment), an early join-phase control drop
/// (§2.5 retransmit), a LAN outage across a §2.7 teardown,
/// alternate-core fallback (§6.1), a partition during a pending join,
/// D-DR takeover (§2.3), and one depth-2 interleaving.
fn golden() -> Vec<(&'static str, u64, Schedule)> {
    vec![
        (
            "chain",
            0,
            Schedule::single(Fault::Crash { router: RouterId(1), at: secs(8), down: dur(12) }),
        ),
        ("chain", 0, Schedule::single(Fault::DropControl { seq: 3 })),
        (
            "chain",
            0,
            Schedule::single(Fault::CutLan {
                lan: LanId(2),
                at: SimTime::from_micros(23_500_000),
                down: dur(12),
            }),
        ),
        (
            "chain",
            0,
            Schedule::single(Fault::DropControl { seq: 7 }).and(Fault::Crash {
                router: RouterId(2),
                at: secs(12),
                down: dur(12),
            }),
        ),
        (
            "diamond",
            0,
            Schedule::single(Fault::Crash { router: RouterId(3), at: secs(6), down: dur(12) }),
        ),
        (
            "diamond",
            0,
            Schedule::single(Fault::CutLink {
                link: LinkId(0),
                at: SimTime::from_micros(1_200_000),
                down: dur(12),
            }),
        ),
        (
            "dual-dr",
            0,
            Schedule::single(Fault::Crash { router: RouterId(0), at: secs(6), down: dur(12) }),
        ),
        ("dual-dr", 0, Schedule::single(Fault::DropControl { seq: 5 })),
    ]
}

/// Rewrites `tests/corpus/` from [`golden`], recording the verdict each
/// schedule *currently* produces. Run only after deliberate changes to
/// the scenarios, the fault numbering, or the engine's recovery story.
#[test]
#[ignore = "regenerates the golden corpus; run explicitly after intentional contract changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "cex") {
            fs::remove_file(path).unwrap();
        }
    }
    for (i, (scenario, seed, schedule)) in golden().into_iter().enumerate() {
        let mut cex = Counterexample {
            scenario: scenario.into(),
            seed,
            shards: 1,
            schedule,
            verdict: Vec::new(),
        };
        cex.verdict = cex.replay().verdict_lines();
        fs::write(dir.join(cex.file_name(i)), cex.to_string()).unwrap();
    }
}

fn load_corpus() -> Vec<(String, Counterexample)> {
    let dir = corpus_dir();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/corpus exists (regenerate_corpus creates it)")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cex"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "golden corpus is empty — run regenerate_corpus");
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = fs::read_to_string(&p).unwrap();
            let cex = Counterexample::parse(&text)
                .unwrap_or_else(|e| panic!("{name}: unparseable corpus entry: {e}"));
            assert_eq!(cex.to_string(), text, "{name}: parse → render is not byte-identical");
            (name, cex)
        })
        .collect()
}

/// Every corpus entry replays to its recorded verdict under the shard
/// count it was recorded with.
#[test]
fn corpus_replays_byte_identically() {
    for (name, cex) in load_corpus() {
        let run = cex.replay();
        assert!(run.quiesced, "{name}: fleet failed to quiesce on replay");
        assert_eq!(run.verdict_lines(), cex.verdict, "{name}: verdict drifted on replay");
    }
}

/// Sharding must be observationally irrelevant: the same corpus under
/// a 2-shard engine (the `CBT_SHARDS=2` configuration) produces the
/// **identical** verdict for every entry.
#[test]
fn corpus_verdicts_identical_under_two_shards() {
    for (name, cex) in load_corpus() {
        let run = cex.replay_with_shards(2);
        assert!(run.quiesced, "{name}: fleet failed to quiesce under 2 shards");
        assert_eq!(
            run.verdict_lines(),
            cex.verdict,
            "{name}: sharded replay diverged from the recorded verdict"
        );
    }
}
