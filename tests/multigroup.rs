//! Multiple concurrent groups: independent trees, isolated delivery,
//! per-group state — and the §8.4 echo-aggregation optimisation
//! measured end-to-end.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{PacketKind, SimTime, WorldConfig};
use cbt_topology::{figure1, NetworkBuilder, RouterId};
use cbt_wire::{ControlType, GroupId};

/// Three groups on Figure 1, different cores and member sets; traffic
/// must stay inside each group.
#[test]
fn groups_are_isolated() {
    let fig = figure1();
    let g1 = GroupId::numbered(1);
    let g2 = GroupId::numbered(2);
    let g3 = GroupId::numbered(3);
    let core_r4 = fig.net.router_addr(fig.router(4));
    let core_r9 = fig.net.router_addr(fig.router(9));
    let core_r3 = fig.net.router_addr(fig.router(3));

    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    // g1: A and H, core R4. g2: B and J, core R9. g3: C and K, core R3.
    cw.host(fig.hosts.a).join_at(SimTime::from_secs(1), g1, vec![core_r4]);
    cw.host(fig.hosts.h).join_at(SimTime::from_secs(1), g1, vec![core_r4]);
    cw.host(fig.hosts.b).join_at(SimTime::from_secs(1), g2, vec![core_r9]);
    cw.host(fig.hosts.j).join_at(SimTime::from_secs(1), g2, vec![core_r9]);
    cw.host(fig.hosts.c).join_at(SimTime::from_secs(1), g3, vec![core_r3]);
    cw.host(fig.hosts.k).join_at(SimTime::from_secs(1), g3, vec![core_r3]);

    cw.host(fig.hosts.a).send_at(SimTime::from_secs(4), g1, b"one".to_vec(), 32);
    cw.host(fig.hosts.b).send_at(SimTime::from_secs(4), g2, b"two".to_vec(), 32);
    cw.host(fig.hosts.c).send_at(SimTime::from_secs(4), g3, b"three".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(7));

    // Each member hears exactly its own group's packet.
    let expect = [
        (fig.hosts.h, b"one".to_vec()),
        (fig.hosts.j, b"two".to_vec()),
        (fig.hosts.k, b"three".to_vec()),
    ];
    for (h, payload) in expect {
        let got = cw.host(h).received();
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].payload, payload);
    }
    // Senders hear nothing (no other senders in their groups).
    for h in [fig.hosts.a, fig.hosts.b, fig.hosts.c] {
        assert!(cw.host(h).received().is_empty());
    }
    // Per-group state: each core serves its group; routers that none
    // of the trees cross hold nothing at all (R5, R6 proxy away their
    // state; R7 and R12 are off every join path).
    assert!(cw.router(fig.router(4)).engine().is_on_tree(g1));
    assert!(cw.router(fig.router(9)).engine().is_on_tree(g2));
    assert!(cw.router(fig.router(3)).engine().is_on_tree(g3));
    for n in [5usize, 6, 7, 12] {
        let engine = cw.router(fig.router(n)).engine();
        for g in [g1, g2, g3] {
            assert!(!engine.is_on_tree(g), "R{n} should hold no state for {g}");
        }
    }
}

/// §8.4 echo aggregation: many groups sharing one parent produce one
/// masked echo per interval instead of one per group — and keepalives
/// still protect every group.
#[test]
fn echo_aggregation_reduces_keepalive_traffic() {
    // Chain R0 — R1(core); 8 groups, all members behind R0.
    let build = |aggregate: bool| {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let host = b.host("A", s0);
        b.link(r0, r1, 1);
        let net = b.build();
        let core = net.router_addr(r1);
        let mut cfg = CbtConfig::fast();
        cfg.aggregate_echoes = aggregate;
        let mut cw = CbtWorld::build(net, cfg, WorldConfig::default());
        for n in 0..8u16 {
            cw.host(host).join_at(SimTime::from_secs(1), GroupId::numbered(n), vec![core]);
        }
        cw.world.start();
        // Join settle + several echo intervals (3 s fast).
        cw.world.run_until(SimTime::from_secs(32));
        let echoes = cw.world.trace().count(PacketKind::Control(ControlType::EchoRequest));
        let failures: u64 =
            (0..2).map(|i| cw.router(RouterId(i)).engine().stats().parent_failures).sum();
        (echoes, failures)
    };

    let (per_group, failures_plain) = build(false);
    let (aggregated, failures_agg) = build(true);
    assert_eq!(failures_plain, 0, "keepalives work without aggregation");
    assert_eq!(failures_agg, 0, "…and with aggregation (§8.4)");
    assert!(
        aggregated * 4 <= per_group,
        "8 groups → ≥4x fewer echo requests with aggregation: {aggregated} vs {per_group}"
    );
}

/// State scales with groups, not with senders, at the router level —
/// the packet-level version of experiment S93-T1's claim.
#[test]
fn fib_size_equals_group_count() {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let host = b.host("A", s0);
    b.link(r0, r1, 1);
    let net = b.build();
    let core = net.router_addr(r1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    for n in 0..5u16 {
        cw.host(host).join_at(SimTime::from_secs(1), GroupId::numbered(n), vec![core]);
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));
    assert_eq!(cw.router(r0).engine().fib().len(), 5, "one FIB entry per group");
    assert_eq!(cw.router(r1).engine().fib().len(), 5);
}
