//! §6.1 core-list rotation during *initial* tree building. Two distinct
//! failure shapes force the two distinct code paths:
//!
//! * **IGP-visible failure** — the primary core is down and routing
//!   knows it. The joining router skips it at launch time (`launch_join`
//!   walks the core list for the first *reachable* core) and the first
//!   JOIN_REQUEST already targets the secondary.
//! * **Silent failure** — the primary core is IGP-reachable but eats
//!   every CBT message (crashed control plane, live forwarding plane).
//!   Joins toward it are sent and time out; the pend-join retry logic
//!   (`fail_pending`) must rotate to the next core inside the
//!   RECONNECT-TIMEOUT budget.
//!
//! Both must converge on a working tree rooted at the secondary core,
//! with end-to-end delivery between members on different arms.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Entity, Outbox, SimDuration, SimNode, SimTime, WorldConfig};
use cbt_topology::{HostId, IfIndex, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::{Addr, GroupId};

/// Y-shape: member arms R3 (host X) and R4 (host Y) hang off hub R0;
/// the cores R1 (primary) and R2 (secondary) sit on their own arms.
struct Y {
    net: NetworkSpec,
    primary: RouterId,
    secondary: RouterId,
    x: HostId,
    y: HostId,
}

fn y_net() -> Y {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0-hub");
    let r1 = b.router("R1-core1");
    let r2 = b.router("R2-core2");
    let r3 = b.router("R3");
    let r4 = b.router("R4");
    for r in [r1, r2, r3, r4] {
        b.link(r0, r, 1);
    }
    let s3 = b.lan("S3");
    b.attach(s3, r3);
    let x = b.host("X", s3);
    let s4 = b.lan("S4");
    b.attach(s4, r4);
    let y = b.host("Y", s4);
    Y { net: b.build(), primary: r1, secondary: r2, x, y }
}

/// Joins both hosts with the core list [primary, secondary], sends one
/// payload each way late in the run, and asserts delivery plus a tree
/// rooted at the secondary core.
fn join_send_and_check(mut cw: CbtWorld, yy: &Y, label: &str, expect_root: bool) {
    let group = GroupId::numbered(9);
    let cores = vec![cw.net.router_addr(yy.primary), cw.net.router_addr(yy.secondary)];
    cw.host(yy.x).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(yy.y).join_at(SimTime::from_secs(1) + SimDuration::from_millis(200), group, cores);
    // Leave room for pend-join timeouts + rotation before sending.
    cw.host(yy.x).send_at(SimTime::from_secs(20), group, b"from-x".to_vec(), 16);
    cw.host(yy.y).send_at(SimTime::from_secs(21), group, b"from-y".to_vec(), 16);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(25));

    let sec = cw.router(yy.secondary).engine().is_on_tree(group);
    assert!(sec, "{label}: secondary core serves the tree");
    if expect_root {
        assert!(
            cw.router(yy.secondary).engine().parent_of(group).is_none(),
            "{label}: secondary core is the root (§6.1 fallback target)"
        );
    }
    // The secondary may hold a transient parent while it retries its
    // §6.1 rejoin toward the (dead) primary, but it must never adopt
    // one of its own subtree routers as a *settled* parent and child
    // simultaneously — that two-node loop is what §6.3 NACTIVE_REJOIN
    // detection breaks.
    let sec_engine = cw.router(yy.secondary).engine();
    let sec_parent = sec_engine.parent_of(group);
    let sec_children = sec_engine.children_of(group);
    if let Some(p) = sec_parent {
        assert!(
            !sec_children.contains(&p),
            "{label}: parent {p} is simultaneously a child — undetected §6.3 loop"
        );
    }
    let x_got = cw.host(yy.x).received();
    assert!(x_got.iter().any(|d| d.payload == b"from-y"), "{label}: X heard Y, got {x_got:?}");
    let y_got = cw.host(yy.y).received();
    assert!(y_got.iter().any(|d| d.payload == b"from-x"), "{label}: Y heard X, got {y_got:?}");
}

/// Primary down, routing knows: `launch_join` must skip straight to
/// the secondary (no pend-join timeout needed — but the outcome is
/// what we pin here).
#[test]
fn igp_visible_primary_failure_skips_to_secondary() {
    let yy = y_net();
    let mut cw = CbtWorld::build(yy.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.fail_router(yy.primary);
    join_send_and_check(cw, &yy, "igp-visible", true);
}

/// A node that accepts every frame and does nothing — a router whose
/// control plane died while the IGP still advertises it.
struct BlackHole;

impl SimNode for BlackHole {
    fn on_packet(
        &mut self,
        _: SimTime,
        _: IfIndex,
        _: Addr,
        _: &cbt_netsim::Bytes,
        _: &mut Outbox,
    ) {
    }
    fn on_timer(&mut self, _: SimTime, _: &mut Outbox) {}
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Primary reachable but silent: the first JOIN_REQUEST targets it and
/// is swallowed; `fail_pending` must rotate the core list and re-join
/// toward the secondary within the RECONNECT budget.
#[test]
fn silent_primary_failure_rotates_after_pend_join_timeout() {
    let yy = y_net();
    let mut cw = CbtWorld::build(yy.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.world.set_node(Entity::Router(yy.primary), Box::new(BlackHole));
    join_send_and_check(cw, &yy, "silent", false);
}

/// §6.2 revival: the silently-dead primary comes back after the
/// secondary's RECONNECT campaign gave up. The IFF-scan backbone
/// safety net must relaunch the rejoin, and the revived primary —
/// which "only becomes aware that it is [a core] by receiving a
/// JOIN-REQUEST" — absorbs the fragment: the tree re-roots at the
/// primary and delivery spans it.
#[test]
fn revived_primary_reabsorbs_the_fragment_via_iff_scan() {
    let yy = y_net();
    let group = GroupId::numbered(9);
    let mut cw = CbtWorld::build(yy.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.world.set_node(Entity::Router(yy.primary), Box::new(BlackHole));
    let cores = vec![cw.net.router_addr(yy.primary), cw.net.router_addr(yy.secondary)];
    cw.host(yy.x).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(yy.y).join_at(SimTime::from_secs(1) + SimDuration::from_millis(200), group, cores);
    // Let the fragment settle under the secondary (campaign gives up
    // by ~15 s fast), then revive the primary with empty state.
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(20));
    assert!(
        cw.router(yy.secondary).engine().is_on_tree(group),
        "fragment serving under the secondary before revival"
    );
    let now = cw.world.now();
    cw.restart_router(yy.primary, now);
    // The fast IFF-scan (30 s) relaunches the backbone campaign; give
    // the flush/rejoin churn time to converge, then exercise data.
    cw.host(yy.x).send_at(SimTime::from_secs(50), group, b"post-revival".to_vec(), 16);
    cw.touch_host(yy.x);
    cw.world.run_until(SimTime::from_secs(55));
    let prim = cw.router(yy.primary).engine();
    assert!(prim.is_on_tree(group), "revived primary absorbed the fragment");
    assert!(
        prim.parent_of(group).is_none(),
        "the primary is the root (§6.2: it waits to be joined)"
    );
    let y_got = cw.host(yy.y).received();
    assert!(
        y_got.iter().any(|d| d.payload == b"post-revival"),
        "delivery spans the re-rooted tree, got {y_got:?}"
    );
}
