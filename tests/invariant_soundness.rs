//! Soundness of the tree-invariant checker (`cbt::explore`): the
//! checker must accept every state the engine legitimately reaches.
//! Randomized join/leave/fault schedules (xorshift — no external
//! crates) drive the fleet through chaos; after healing and
//! quiescence, a correct engine plus a sound checker means **zero**
//! violations. A failure here is either a real protocol bug (good —
//! minimize it through `cbt::explore`) or a checker false positive
//! (bad — the exploration harness would drown in noise).

use cbt::explore::{check_tree_invariants, execute, Fault, Scenario, Schedule};
use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{FaultPlan, SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, HostId, LanId, LinkId, NetworkSpec, RouterId};
use cbt_wire::GroupId;

/// xorshift64* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Random membership schedule on a random-ish topology, under random
/// packet loss, with a random mid-run router outage: whatever survives
/// must check clean after heal + quiescence.
#[test]
fn checker_accepts_every_surviving_random_schedule() {
    for round in 0..6u64 {
        let mut rng = XorShift::new(0xC0FE + round);
        let graph = generate::waxman(generate::WaxmanParams { n: 12, ..Default::default() }, round);
        let net = NetworkSpec::from_graph_with_stub_lans(&graph);
        let n_routers = net.routers.len();
        let n_hosts = net.hosts.len();
        let core_addr = net.router_addr(RouterId(rng.below(n_routers as u64) as u32));
        let group = GroupId::numbered(1);
        let drop_chance = rng.below(12) as f64 / 100.0; // 0–11 %
        let mut cw = CbtWorld::build(
            net,
            CbtConfig::fast(),
            WorldConfig { fault: FaultPlan::drops(drop_chance), seed: round, ..Default::default() },
        );

        // Random joins; roughly a third leave again mid-run.
        let mut members = 0;
        for h in 0..n_hosts as u32 {
            if rng.below(100) < 60 {
                members += 1;
                let t_join = 1_000_000 + rng.below(10_000_000);
                cw.host(HostId(h)).join_at(SimTime::from_micros(t_join), group, vec![core_addr]);
                if rng.below(100) < 33 {
                    let t_leave = t_join + 15_000_000 + rng.below(20_000_000);
                    cw.host(HostId(h)).leave_at(SimTime::from_micros(t_leave), group);
                }
            }
        }
        if members == 0 {
            cw.host(HostId(0)).join_at(SimTime::from_secs(1), group, vec![core_addr]);
        }

        // Chaos phase with a router outage somewhere in the middle.
        cw.world.start();
        let crash = RouterId(rng.below(n_routers as u64) as u32);
        let t_crash = SimTime::from_micros(12_000_000 + rng.below(20_000_000));
        cw.world.run_until(t_crash);
        cw.fail_router(crash);
        cw.world.run_for(SimDuration::from_micros(3_000_000 + rng.below(12_000_000)));
        cw.restart_router(crash, cw.world.now());
        cw.world.run_until(SimTime::from_secs(70));

        // Heal, quiesce, check: the engine survived, so the checker
        // must have nothing to say.
        cw.world.set_fault_plan(FaultPlan::none());
        cw.world.run_until(SimTime::from_secs(130));
        assert!(
            cbt::explore::await_quiescence(&mut cw, &[group], SimDuration::from_secs(60)),
            "round {round}: fleet failed to quiesce"
        );
        let violations = check_tree_invariants(&cw, &[group]);
        assert!(
            violations.is_empty(),
            "round {round} (drop {drop_chance}, crash r{}): checker flagged a surviving \
             state: {violations:?}",
            crash.0
        );
    }
}

/// The same property through the replay primitive: random fault
/// schedules over the named scenarios all execute to an `ok` verdict
/// on the healthy engine.
#[test]
fn random_schedules_replay_clean_through_execute() {
    let mut rng = XorShift::new(0xD1CE);
    for round in 0..10u64 {
        let name = Scenario::names()[rng.below(Scenario::names().len() as u64) as usize];
        let scn = Scenario::by_name(name).unwrap();
        // Size the random fault targets to the scenario's topology.
        let probe = scn.build(1, 0, &Schedule::none(), false);
        let (n_routers, n_links, n_lans) = (
            probe.net.routers.len() as u64,
            probe.net.links.len() as u64,
            probe.net.lans.len() as u64,
        );
        let mut schedule = Schedule::none();
        for _ in 0..=rng.below(3) {
            let horizon_us = scn.horizon.micros();
            let at = SimTime::from_micros(1_000_000 + rng.below(horizon_us - 1_000_000));
            let down = SimDuration::from_micros(2_000_000 + rng.below(14_000_000));
            let f = match rng.below(4) {
                0 => Fault::DropControl { seq: rng.below(120) },
                1 => Fault::Crash { router: RouterId(rng.below(n_routers) as u32), at, down },
                2 => Fault::CutLink { link: LinkId(rng.below(n_links) as u32), at, down },
                _ => Fault::CutLan { lan: LanId(rng.below(n_lans) as u32), at, down },
            };
            schedule = schedule.and(f);
        }
        let r = execute(&scn, &schedule, 1, round);
        assert!(r.quiesced, "round {round} {name} {schedule:?}: did not quiesce");
        assert_eq!(
            r.verdict_lines(),
            vec!["ok".to_string()],
            "round {round} {name} {schedule:?}: {:?}",
            r.violations
        );
    }
}
