//! Randomized churn soak: hosts join, leave and transmit on seeded
//! random schedules over Waxman topologies; delivery must always equal
//! membership (each current member hears each foreign packet exactly
//! once), and departed branches must clean up.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

struct Script {
    /// (host, join time, leave time)
    memberships: Vec<(HostId, SimTime, Option<SimTime>)>,
    /// (sender host, time, payload tag)
    sends: Vec<(HostId, SimTime, u64)>,
}

fn random_script(n: usize, seed: u64) -> Script {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut memberships = Vec::new();
    let mut sends = Vec::new();
    let mut hosts: Vec<u32> = (0..n as u32).collect();
    hosts.shuffle(&mut rng);
    // Eight members: half stay, half leave mid-run.
    for (i, &h) in hosts.iter().take(8).enumerate() {
        let join = SimTime::from_secs(1 + rng.gen_range(0..3));
        let leave = (i % 2 == 1).then(|| SimTime::from_secs(20 + rng.gen_range(0..5)));
        memberships.push((HostId(h), join, leave));
    }
    // Sends from members and non-members, spread over the run: one
    // batch while everyone is joined, one after the leavers left.
    for tag in 0..4u64 {
        let sender = HostId(hosts[rng.gen_range(0..12)]);
        sends.push((sender, SimTime::from_secs(12 + tag), tag));
    }
    for tag in 4..8u64 {
        let sender = HostId(hosts[rng.gen_range(0..12)]);
        sends.push((sender, SimTime::from_secs(40 + tag), tag));
    }
    Script { memberships, sends }
}

#[test]
fn churn_delivery_equals_membership() {
    for seed in 0..4u64 {
        let graph = generate::waxman(generate::WaxmanParams { n: 24, ..Default::default() }, seed);
        let net = NetworkSpec::from_graph_with_stub_lans(&graph);
        let core_addr = net.router_addr(RouterId(0));
        let group = GroupId::numbered(1);
        let script = random_script(24, seed.wrapping_add(99));

        let cfg = CbtConfig::fast().with_mapping(group, vec![core_addr]);
        let mut cw = CbtWorld::build(net, cfg, WorldConfig::default());
        for (h, join, leave) in &script.memberships {
            cw.host(*h).join_at(*join, group, vec![core_addr]);
            if let Some(leave) = leave {
                cw.host(*h).leave_at(*leave, group);
            }
        }
        for (h, at, tag) in &script.sends {
            cw.host(*h).send_at(*at, group, tag.to_be_bytes().to_vec(), 64);
        }
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(60));

        // Verify per send: every host that was a member at send time
        // (and not the sender) heard it exactly once; everyone else,
        // never. Leavers are only checked against sends that happened
        // comfortably outside the teardown window.
        for (sender, at, tag) in &script.sends {
            let sender_addr = cw.host(*sender).addr();
            for (h, join, leave) in &script.memberships {
                if h == sender {
                    continue;
                }
                let teardown_slack = SimDuration::from_secs(5);
                let joined_by_then = *join + SimDuration::from_secs(5) <= *at;
                let left_by_then = leave.is_some_and(|l| l + teardown_slack <= *at);
                let in_window = leave.is_none_or(|l| *at + SimDuration::ZERO < l);
                let copies = cw
                    .host(*h)
                    .received()
                    .iter()
                    .filter(|d| d.payload == tag.to_be_bytes().to_vec() && d.src == sender_addr)
                    .count();
                if joined_by_then && in_window {
                    assert_eq!(
                        copies, 1,
                        "seed {seed}: member {h:?} heard tag {tag} {copies} times"
                    );
                } else if left_by_then {
                    assert_eq!(copies, 0, "seed {seed}: departed host {h:?} still heard tag {tag}");
                }
            }
        }
    }
}

/// After every member leaves, the whole network drops back to zero
/// protocol state — off-tree routers hold nothing (the O(G) story needs
/// cleanup to be true, not just joining).
#[test]
fn full_leave_cleans_all_state() {
    let graph = generate::waxman(generate::WaxmanParams { n: 20, ..Default::default() }, 2);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core_addr = net.router_addr(RouterId(0));
    let group = GroupId::numbered(1);
    let members: Vec<NodeId> = (2..14).step_by(3).map(|i| NodeId(i as u32)).collect();

    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    for m in &members {
        cw.host(HostId(m.0)).join_at(SimTime::from_secs(1), group, vec![core_addr]);
        cw.host(HostId(m.0)).leave_at(SimTime::from_secs(10), group);
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(8));
    let attached =
        members.iter().filter(|m| cw.router(RouterId(m.0)).engine().is_on_tree(group)).count();
    assert_eq!(attached, members.len(), "everyone joined first");

    // Leave + teardown, including the IFF-scan safety net (fast: 30 s).
    cw.world.run_until(SimTime::from_secs(60));
    for i in 0..20u32 {
        let engine = cw.router(RouterId(i)).engine();
        assert!(!engine.is_on_tree(group), "router R{i} still holds state after universal leave");
        assert!(!engine.has_pending_join(group));
    }
}
