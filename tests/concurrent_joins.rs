//! Simultaneous joins: the §2.5 pending-join cache exists exactly for
//! joins that race each other mid-flight. These scenarios make joins
//! collide as hard as the topology allows and assert the resulting
//! trees are still correct.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{PacketKind, SimTime, WorldConfig};
use cbt_topology::{generate, Graph, HostId, NetworkBuilder, NetworkSpec, NodeId, RouterId};
use cbt_wire::{ControlType, GroupId};

/// Diamond: two equal-cost paths between the joiners' DRs and the core.
///
/// ```text
///        Rtop
///       /    \
///  Rwest      Reast
///       \    /
///        Rbot(core)
/// ```
#[test]
fn diamond_simultaneous_joins_converge() {
    let mut b = NetworkBuilder::new();
    let r_top = b.router("Rtop");
    let r_west = b.router("Rwest");
    let r_east = b.router("Reast");
    let r_bot = b.router("Rbot");
    b.link(r_top, r_west, 1);
    b.link(r_top, r_east, 1);
    b.link(r_west, r_bot, 1);
    b.link(r_east, r_bot, 1);
    let s_top = b.lan("Stop");
    b.attach(s_top, r_top);
    let h_top = b.host("HT", s_top);
    let s_west = b.lan("Swest");
    b.attach(s_west, r_west);
    let h_west = b.host("HW", s_west);
    let s_east = b.lan("Seast");
    b.attach(s_east, r_east);
    let h_east = b.host("HE", s_east);
    let net = b.build();
    let core = net.router_addr(r_bot);
    let group = GroupId::numbered(1);

    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    // All three joins fire at the exact same instant.
    for h in [h_top, h_west, h_east] {
        cw.host(h).join_at(SimTime::from_secs(1), group, vec![core]);
    }
    cw.host(h_top).send_at(SimTime::from_secs(3), group, b"race".to_vec(), 16);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(6));

    for r in [r_top, r_west, r_east] {
        assert!(cw.router(r).engine().is_on_tree(group));
        assert!(!cw.router(r).engine().has_pending_join(group));
    }
    // Parent pointers form a tree rooted at the core (acyclic and all
    // connected to Rbot).
    let mut tree = Graph::with_nodes(4);
    for (i, r) in [r_top, r_west, r_east, r_bot].iter().enumerate() {
        if let Some(p) = cw.router(*r).engine().parent_of(group) {
            let parent = cw.net.router_of(p).unwrap();
            tree.add_edge(NodeId(i as u32), NodeId(parent.0), 1);
        }
    }
    assert!(tree.is_forest(), "no cycle out of the racing joins");
    // Delivery: both other members got exactly one copy.
    assert_eq!(cw.host(h_west).received().len(), 1);
    assert_eq!(cw.host(h_east).received().len(), 1);
    assert!(cw.host(h_top).received().is_empty());
}

/// Same-instant joins along a shared path: members stacked on one line
/// all join at t=1. The joins meet each other as pending state; the
/// §2.5 cache must absorb them (joins_cached > 0) and every branch
/// completes.
#[test]
fn chain_of_simultaneous_joins_uses_the_pending_cache() {
    // line: core — R1 — R2 — R3 — R4, members behind R1..R4.
    let graph = generate::line(5);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core = net.router_addr(RouterId(0));
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    for i in 1..5u32 {
        cw.host(HostId(i)).join_at(SimTime::from_secs(1), group, vec![core]);
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(6));

    let mut cached_total = 0;
    for i in 1..5u32 {
        let engine = cw.router(RouterId(i)).engine();
        assert!(engine.is_on_tree(group), "R{i} attached");
        cached_total += engine.stats().joins_cached;
    }
    assert!(
        cached_total > 0,
        "at least one join raced into a pending router and was cached (§2.5)"
    );
    // Each router sent at most one join upstream despite the pile-up:
    // total joins on the wire = 4 originations (one per hop that needed
    // establishing), not 4 members × path length.
    let joins = cw.world.trace().count(PacketKind::Control(ControlType::JoinRequest));
    assert_eq!(joins, 4, "one establishing join per new tree hop");
}

/// Randomised stress: on Waxman graphs, ALL members of a large group
/// join at the same instant. Converged trees must match the staggered
/// result (join order must not matter).
#[test]
fn simultaneous_equals_staggered_tree() {
    for seed in 0..3u64 {
        let graph = generate::waxman(generate::WaxmanParams { n: 30, ..Default::default() }, seed);
        let members: Vec<NodeId> = (1..30).step_by(2).map(NodeId).collect();
        let group = GroupId::numbered(1);

        let run = |stagger_ms: u64| {
            let net = NetworkSpec::from_graph_with_stub_lans(&graph);
            let core = net.router_addr(RouterId(0));
            let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
            for (i, m) in members.iter().enumerate() {
                cw.host(HostId(m.0)).join_at(
                    SimTime::from_secs(1)
                        + cbt_netsim::SimDuration::from_millis(stagger_ms * i as u64),
                    group,
                    vec![core],
                );
            }
            cw.world.start();
            cw.world.run_until(SimTime::from_secs(20));
            // Collect (router, parent router) edges.
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for i in 0..30u32 {
                if let Some(p) = cw.router(RouterId(i)).engine().parent_of(group) {
                    edges.push((i, cw.net.router_of(p).unwrap().0));
                }
            }
            edges.sort();
            edges
        };

        assert_eq!(run(0), run(300), "seed {seed}: join timing must not change the converged tree");
    }
}
