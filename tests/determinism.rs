//! Determinism regression: the whole point of the zero-copy hot path
//! and the parallel trial runner is that neither may perturb results.
//! A seeded scenario must replay bit-identically (same counters *and*
//! the same event stream, hashed transmission by transmission), and
//! the eval suite's fan-out must merge trials into exactly the order a
//! sequential run produces.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{FaultPlan, SimTime, WorldConfig};
use cbt_topology::{generate, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A busy little world: joins, a mid-churn data transmission, and
/// enough fault injection to consume the world's only RNG stream.
fn build_with(seed: u64, cfg: CbtConfig) -> CbtWorld {
    let graph = generate::waxman(generate::WaxmanParams { n: 20, ..Default::default() }, 4);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core_addr = net.router_addr(RouterId(0));
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(
        net,
        cfg,
        WorldConfig {
            fault: FaultPlan { drop_chance: 0.08, corrupt_chance: 0.05, ..FaultPlan::default() },
            seed,
            ..Default::default()
        },
    );
    for i in (2..20u32).step_by(3) {
        cw.host(HostId(NodeId(i).0)).join_at(SimTime::from_secs(1), group, vec![core_addr]);
    }
    cw.host(HostId(2)).send_at(SimTime::from_secs(10), group, b"probe".to_vec(), 64);
    cw
}

fn build(seed: u64) -> CbtWorld {
    build_with(seed, CbtConfig::fast())
}

/// Order-sensitive digest of every transmission the trace recorded:
/// any reordering, duplication, or divergence in timing, classification
/// or size changes the hash.
fn event_stream_hash(cw: &CbtWorld) -> u64 {
    let mut h = DefaultHasher::new();
    for e in cw.world.trace().entries() {
        format!("{:?} {:?} {:?} {:?} {:?} {}", e.at, e.from, e.iface, e.medium, e.kind, e.bytes)
            .hash(&mut h);
    }
    h.finish()
}

fn run(seed: u64) -> ((u64, u64), Vec<(cbt_netsim::PacketKind, u64)>, u64) {
    let mut cw = build(seed);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(30));
    (cw.world.trace().totals(), cw.world.trace().kind_counts(), event_stream_hash(&cw))
}

/// Same seed ⇒ same counters, same kind breakdown, same event-stream
/// hash. This is the regression net under the `Bytes` fan-out and the
/// precomputed delivery plans: a single swapped delivery or an extra
/// clone that changes fault-RNG consumption shows up here.
#[test]
fn seeded_scenario_replays_bit_identically() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a.0, b.0, "frame/byte totals must replay");
    assert_eq!(a.1, b.1, "per-kind counters must replay");
    assert_eq!(a.2, b.2, "event-stream hash must replay");
}

/// Different seeds genuinely differ — otherwise the hash above is
/// vacuous.
#[test]
fn different_seeds_diverge() {
    assert_ne!(run(42).2, run(43).2, "fault seeds must matter");
}

fn run_cfg(seed: u64, cfg: CbtConfig) -> ((u64, u64), Vec<(cbt_netsim::PacketKind, u64)>, u64) {
    let mut cw = build_with(seed, cfg);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(30));
    (cw.world.trace().totals(), cw.world.trace().kind_counts(), event_stream_hash(&cw))
}

/// The wheel-driven timer service must be *behaviour-preserving*, not
/// just correct: under seeded churn (lossy links force pending-join
/// retransmits, core switches, echo timeouts and re-attachments) every
/// transmission must happen at the same instant, in the same order,
/// with the same bytes as the legacy scan-every-tick engine — any
/// timer that fires early, late, twice, or not at all changes the
/// event-stream hash.
#[test]
fn timer_wheel_replays_the_scan_engine_bit_identically() {
    for seed in [7u64, 42, 1337] {
        let wheel = run_cfg(seed, CbtConfig { timer_wheel: true, ..CbtConfig::fast() });
        let scan = run_cfg(seed, CbtConfig { timer_wheel: false, ..CbtConfig::fast() });
        assert_eq!(wheel.0, scan.0, "seed {seed}: frame/byte totals diverge");
        assert_eq!(wheel.1, scan.1, "seed {seed}: per-kind counters diverge");
        assert_eq!(wheel.2, scan.2, "seed {seed}: event-stream hash diverges");
    }
}

/// Same equivalence with §8.4 echo aggregation on — the path whose
/// per-parent refresh now rides the parent index.
#[test]
fn timer_wheel_matches_scan_with_aggregated_echoes() {
    for seed in [5u64, 99] {
        let base = CbtConfig { aggregate_echoes: true, ..CbtConfig::fast() };
        let wheel = run_cfg(seed, CbtConfig { timer_wheel: true, ..base.clone() });
        let scan = run_cfg(seed, CbtConfig { timer_wheel: false, ..base });
        assert_eq!(wheel.1, scan.1, "seed {seed}: per-kind counters diverge");
        assert_eq!(wheel.2, scan.2, "seed {seed}: event-stream hash diverges");
    }
}

/// Order-sensitive digest of the *control-plane* substream only.
fn control_stream_hash(cw: &CbtWorld) -> u64 {
    let mut h = DefaultHasher::new();
    for e in cw.world.trace().entries().iter().filter(|e| e.kind.is_control()) {
        format!("{:?} {:?} {:?} {:?} {:?} {}", e.at, e.from, e.iface, e.medium, e.kind, e.bytes)
            .hash(&mut h);
    }
    h.finish()
}

/// Control-plane fault replay must be immune to data traffic: drop and
/// corruption decisions come from per-class RNG streams with per-class
/// sequence numbers, so adding data transmissions to a run must not
/// shift a single control-plane fault decision. Both the probabilistic
/// plan and a targeted control-seq drop list are pinned — under the
/// old single-stream injector every data frame advanced the shared RNG
/// and the control stream diverged immediately.
#[test]
fn data_traffic_cannot_perturb_control_fault_replay() {
    let plans: [FaultPlan; 2] = [
        FaultPlan { drop_chance: 0.10, corrupt_chance: 0.05, ..FaultPlan::default() },
        FaultPlan::none().with_control_drops(vec![3, 7, 20]),
    ];
    for plan in plans {
        let run = |extra_data: bool| {
            let graph = generate::waxman(generate::WaxmanParams { n: 20, ..Default::default() }, 4);
            let net = NetworkSpec::from_graph_with_stub_lans(&graph);
            let core_addr = net.router_addr(RouterId(0));
            let group = GroupId::numbered(1);
            let mut cw = CbtWorld::build(
                net,
                CbtConfig::fast(),
                WorldConfig { fault: plan.clone(), seed: 11, ..Default::default() },
            );
            for i in (2..20u32).step_by(3) {
                cw.host(HostId(i)).join_at(SimTime::from_secs(1), group, vec![core_addr]);
            }
            if extra_data {
                for k in 0..12u64 {
                    cw.host(HostId(2)).send_at(
                        SimTime::from_micros(8_000_000 + 700_000 * k),
                        group,
                        format!("load{k}").into_bytes(),
                        64,
                    );
                }
            }
            cw.world.start();
            cw.world.run_until(SimTime::from_secs(30));
            (control_stream_hash(&cw), cw.world.trace().data_frames())
        };
        let quiet = run(false);
        let loaded = run(true);
        assert!(loaded.1 > quiet.1, "the loaded run really carried extra data frames");
        assert_eq!(
            quiet.0, loaded.0,
            "control-plane event stream shifted under data load (plan {plan:?})"
        );
    }
}

/// The parallel trial runner must hand back exactly what a sequential
/// in-order map produces, even with more workers than this machine has
/// cores and with trials that finish out of submission order.
#[test]
fn parallel_trials_match_sequential_map() {
    cbt_eval::parallel::set_jobs(4);
    let seeds: Vec<u64> = (0..8).collect();
    let trial = |&seed: &u64| {
        let mut cw = build(seed);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(15));
        let (frames, bytes) = cw.world.trace().totals();
        (seed, frames, bytes, event_stream_hash(&cw))
    };
    let sequential: Vec<_> = seeds.iter().map(trial).collect();
    let parallel = cbt_eval::parallel::run_trials(&seeds, trial);
    assert_eq!(parallel, sequential, "fan-out must merge in seed order with identical results");
}
