//! Coverage for two under-exercised substrate dimensions:
//!
//! 1. **Weighted links** — joins follow the unicast *metric*, not hop
//!    count, so a cheap long path beats an expensive short one;
//! 2. **Randomised multi-router LANs** — topologies where several
//!    routers share segments, so joins cross LANs, proxy-acks fire
//!    stochastically, and tree branches overlap member subnets. Such
//!    configurations found (and now pin) a data-plane amplification
//!    bug: without validating that a packet's *link-layer* sender is
//!    the tree neighbour, member-delivery multicasts from a co-located
//!    G-DR were mistaken for branch traffic and amplified around
//!    shared-LAN cycles (1.3M frames from four sends before the fix).
//!    With the neighbour check, delivery is complete and bounded; a
//!    host on a LAN that is simultaneously someone else's tree branch
//!    may hear a *bounded* duplicate (one per extra on-tree forwarder
//!    on its LAN) — the multi-forwarder ambiguity that PIM later
//!    solved with its Assert mechanism, which the 1995 CBT spec does
//!    not have. See SPEC_COVERAGE.md, deviation 6.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::GroupId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Metric-vs-hops: direct link R0—Rcore costs 10; detour
/// R0—Ra—Rb—Rcore costs 3×1. The join must take the detour.
#[test]
fn joins_follow_metric_not_hop_count() {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let ra = b.router("Ra");
    let rb = b.router("Rb");
    let rcore = b.router("Rcore");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let h = b.host("H", s0);
    b.link(r0, rcore, 10); // expensive direct
    b.link(r0, ra, 1);
    b.link(ra, rb, 1);
    b.link(rb, rcore, 1); // cheap detour
    let net = b.build();
    let core = net.router_addr(rcore);
    let group = GroupId::numbered(1);

    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(4));

    // The branch runs through Ra and Rb, not the direct link.
    assert!(cw.router(ra).engine().is_on_tree(group), "detour hop Ra on-tree");
    assert!(cw.router(rb).engine().is_on_tree(group), "detour hop Rb on-tree");
    let r0_parent = cw.router(r0).engine().parent_of(group).expect("attached");
    let parent_router = cw.net.router_of(r0_parent).unwrap();
    assert_eq!(parent_router, ra, "R0's parent is the cheap next hop");
    // And data crosses the same detour.
    let core_children = cw.router(rcore).engine().children_of(group);
    assert_eq!(core_children.len(), 1);
    assert_eq!(cw.net.router_of(core_children[0]).unwrap(), rb);
}

/// Randomised multi-access topologies: `n` routers, some sharing LANs,
/// some chained with p2p links, member hosts scattered across the LANs.
/// Every member must receive every foreign payload exactly once.
fn random_lan_network(seed: u64) -> (NetworkSpec, Vec<HostId>, RouterId) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let n = 10usize;
    let routers: Vec<RouterId> = (0..n).map(|i| b.router(format!("R{i}"))).collect();
    // A backbone chain keeps everything connected.
    for w in routers.windows(2) {
        b.link(w[0], w[1], 1);
    }
    // Four shared LANs, each with 2-3 random routers and one host.
    let mut hosts = Vec::new();
    for k in 0..4 {
        let lan = b.lan(format!("L{k}"));
        let mut members: Vec<usize> = (0..n).collect();
        members.shuffle(&mut rng);
        for &m in members.iter().take(2 + (k % 2)) {
            b.attach(lan, routers[m]);
        }
        hosts.push(b.host(format!("H{k}"), lan));
    }
    (b.build(), hosts, routers[n / 2])
}

#[test]
fn random_multiaccess_topologies_deliver_exactly_once() {
    for seed in 0..6u64 {
        let (net, hosts, core_router) = random_lan_network(seed);
        let core = net.router_addr(core_router);
        let group = GroupId::numbered(1);
        let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
        for (i, h) in hosts.iter().enumerate() {
            cw.host(*h).join_at(
                SimTime::from_secs(1) + SimDuration::from_millis(150 * i as u64),
                group,
                vec![core],
            );
        }
        // Every host sends one tagged payload.
        for (i, h) in hosts.iter().enumerate() {
            cw.host(*h).send_at(
                SimTime::from_secs(5) + SimDuration::from_millis(400 * i as u64),
                group,
                format!("tag-{i}").into_bytes(),
                64,
            );
        }
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(12));

        // How many frames moved in total? Before the neighbour-source
        // fix this exploded to millions (shared-LAN amplification);
        // bounded now.
        let (frames, _) = cw.world.trace().totals();
        assert!(frames < 5_000, "seed {seed}: data-plane amplification: {frames} frames");

        for (i, h) in hosts.iter().enumerate() {
            let got = cw.host(*h).received();
            // COMPLETE: every host hears every other host at least once.
            let mut tags: Vec<Vec<u8>> = got.iter().map(|d| d.payload.clone()).collect();
            tags.sort();
            tags.dedup();
            assert_eq!(
                tags.len(),
                hosts.len() - 1,
                "seed {seed}: host {i} missed payloads, heard {:?}",
                got.iter()
                    .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
                    .collect::<Vec<_>>()
            );
            // BOUNDED: at most one copy per on-tree forwarder on the
            // host's LAN (the generator attaches ≤3 routers per LAN).
            // Multi-forwarder LANs are the pre-PIM-Assert ambiguity the
            // 1995 spec leaves open; what matters is that duplication
            // is bounded by the LAN's router count, not amplified.
            assert!(
                got.len() <= 3 * (hosts.len() - 1),
                "seed {seed}: host {i} heard {} copies of {} payloads",
                got.len(),
                hosts.len() - 1
            );
        }
    }
}

/// The shipped `examples/topologies/demo.json` must stay valid and
/// runnable — it is the first thing a user feeds to `cbtd`.
#[test]
fn shipped_demo_deployment_parses_and_builds() {
    let text = std::fs::read_to_string("examples/topologies/demo.json")
        .expect("demo.json ships with the repo");
    let built = cbt_node::Deployment::from_json(&text)
        .expect("valid JSON")
        .build()
        .expect("valid references");
    assert!(built.net.router_graph().is_connected());
    assert!(!built.config.script.is_empty());
    assert!(built.config.cores.iter().all(|c| built.routers.contains_key(c)));
}
