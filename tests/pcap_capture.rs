//! End-to-end pcap capture: a full protocol run captured to the
//! libpcap format, parsed back, and the CBT control messages recovered
//! byte-exactly from the capture records — proving a Wireshark user
//! would see real CBT traffic.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{Capture, SimTime, WorldConfig};
use cbt_topology::figure1;
use cbt_wire::{ControlMessage, IpProto, JoinSubcode, UdpHeader, CBT_AUX_PORT, CBT_PRIMARY_PORT};

#[test]
fn figure1_run_produces_a_parseable_capture() {
    let fig = figure1();
    let group = cbt_wire::GroupId::numbered(1);
    let cores =
        vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())];
    let mut cw = CbtWorld::build(
        fig.net.clone(),
        CbtConfig::fast(),
        WorldConfig { capture_pcap: true, ..Default::default() },
    );
    cw.host(fig.hosts.a).join_at(SimTime::from_secs(1), group, cores.clone());
    cw.host(fig.hosts.g).join_at(SimTime::from_secs(1), group, cores);
    cw.host(fig.hosts.g).send_at(SimTime::from_secs(3), group, b"captured".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));

    let cap = cw.world.capture().expect("capture enabled");
    assert!(!cap.is_empty());

    // Serialise and re-parse the capture file.
    let mut buf = Vec::new();
    cap.write_to(&mut buf).unwrap();
    let records = Capture::parse(&buf).unwrap();
    assert_eq!(records.len(), cap.len());

    // Timestamps are monotone non-decreasing.
    for w in records.windows(2) {
        assert!(w[0].0 <= w[1].0, "capture timestamps ordered");
    }

    // Recover the CBT control conversation from raw capture bytes: at
    // least one ACTIVE_JOIN and one ack must decode from UDP/7777.
    let mut joins = 0;
    let mut acks = 0;
    let mut echoes = 0;
    for (_, frame) in &records {
        let Ok((hdr, body)) = cbt_wire::ipv4::split_datagram(frame) else { continue };
        if hdr.proto != IpProto::Udp {
            continue;
        }
        let Ok((udp, payload)) = UdpHeader::unwrap(body) else { continue };
        if udp.dst_port != CBT_PRIMARY_PORT && udp.dst_port != CBT_AUX_PORT {
            continue;
        }
        match ControlMessage::decode(payload) {
            Ok(ControlMessage::JoinRequest { subcode: JoinSubcode::ActiveJoin, .. }) => joins += 1,
            Ok(ControlMessage::JoinAck { .. }) => acks += 1,
            Ok(ControlMessage::EchoRequest { .. }) => {
                assert_eq!(udp.dst_port, CBT_AUX_PORT, "echoes ride the aux port (§3)");
                echoes += 1;
            }
            _ => {}
        }
    }
    assert!(joins >= 2, "capture holds the join conversation ({joins})");
    assert!(acks >= 2, "and its acknowledgements ({acks})");
    assert!(echoes >= 1, "and the keepalives ({echoes})");

    // The multicast data payload is in there too, recoverable.
    let data_frames: Vec<_> = records
        .iter()
        .filter_map(|(_, f)| cbt_wire::DataPacket::decode(f).ok())
        .filter(|p| p.payload == b"captured")
        .collect();
    assert!(!data_frames.is_empty(), "application payload visible in the capture");
}
