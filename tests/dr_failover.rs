//! D-DR failover on a multi-access LAN (§2.3): the querier role — and
//! with it CBT DR duty — moves when the current D-DR dies, and the
//! survivor takes over serving new membership.
//!
//! End states are validated by the shared tree-invariant checker
//! (`cbt::explore`): DR-specific assertions stay, but attachment,
//! FIB symmetry, and loop freedom come from the common suite (down
//! routers are skipped, so a permanently dead D-DR is fine).

use cbt::explore::{assert_tree_invariants, await_quiescence};
use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::GroupId;

/// Two routers on one LAN, both uplinked to the core.
///   host — [S0: Rlow, Rhigh] ; Rlow—Rcore ; Rhigh—Rcore
fn dual_dr_net() -> (NetworkSpec, RouterId, RouterId, RouterId, HostId) {
    let mut b = NetworkBuilder::new();
    let r_low = b.router("Rlow"); // attached first → lowest addr → D-DR
    let r_high = b.router("Rhigh");
    let r_core = b.router("Rcore");
    let s0 = b.lan("S0");
    b.attach(s0, r_low);
    b.attach(s0, r_high);
    let h = b.host("H", s0);
    b.link(r_low, r_core, 1);
    b.link(r_high, r_core, 1);
    (b.build(), r_low, r_high, r_core, h)
}

#[test]
fn lowest_addressed_router_is_initial_dr() {
    let (net, r_low, r_high, r_core, h) = dual_dr_net();
    let core = net.router_addr(r_core);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(2), group, vec![core]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));
    // The D-DR (lowest address on S0) originated the join and serves
    // the branch; the other router holds nothing.
    assert!(cw.router(r_low).engine().is_on_tree(group));
    assert_eq!(cw.router(r_low).engine().stats().joins_originated, 1);
    assert!(!cw.router(r_high).engine().is_on_tree(group));
    assert_eq!(cw.router(r_high).engine().stats().joins_originated, 0);
    assert!(await_quiescence(&mut cw, &[group], SimDuration::from_secs(30)));
    assert_tree_invariants(&cw, &[group]);
}

/// Kill the D-DR: the surviving router stops hearing its queries,
/// reclaims querier duty after the other-querier-present interval, and
/// serves the group — new data reaches the host again.
#[test]
fn surviving_router_takes_over_after_dr_death() {
    let (net, r_low, r_high, r_core, h) = dual_dr_net();
    let core_addr = net.router_addr(r_core);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(2), group, vec![core_addr]);
    // A far-side sender: put it behind the core itself via managed app
    // use — simplest is the host on S0 receiving from a second host we
    // attach in a richer topology; here we check control-plane takeover.
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(5));
    assert!(cw.router(r_low).engine().is_on_tree(group));

    // D-DR dies.
    cw.fail_router(r_low);
    // The fast IGMP timers: other-querier-present = 21 s; after that
    // Rhigh reclaims querier duty → becomes D-DR → the host's periodic
    // re-reports trigger a fresh join from Rhigh.
    cw.world.run_until(SimTime::from_secs(60));
    let survivor = cw.router(r_high).engine();
    assert!(
        survivor.is_on_tree(group),
        "survivor took over DR duty and joined: stats {:?}",
        survivor.stats()
    );
    assert!(survivor.stats().joins_originated >= 1);

    // And the takeover carries data: the core forwards down to Rhigh.
    let children = cw.router(r_core).engine().children_of(group);
    assert_eq!(children.len(), 1, "exactly one live branch: {children:?}");
    // The post-takeover tree is fully consistent (Rlow stays dead and
    // is excluded; the checker proves the survivors' tree is clean).
    assert!(await_quiescence(&mut cw, &[group], SimDuration::from_secs(30)));
    assert_tree_invariants(&cw, &[group]);
}

/// With both LAN routers alive, only ONE of them ever forwards a given
/// packet onto the LAN (G-DR uniqueness): the host receives exactly one
/// copy even though two routers sit on its subnet.
#[test]
fn dual_router_lan_no_duplicate_delivery() {
    let mut b = NetworkBuilder::new();
    let r_low = b.router("Rlow");
    let r_high = b.router("Rhigh");
    let r_core = b.router("Rcore");
    let r_src = b.router("Rsrc");
    let s0 = b.lan("S0");
    b.attach(s0, r_low);
    b.attach(s0, r_high);
    let h = b.host("H", s0);
    b.link(r_low, r_core, 1);
    b.link(r_high, r_core, 1);
    b.link(r_src, r_core, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r_src);
    let sender = b.host("SND", s1);
    let net = b.build();
    let core = net.router_addr(r_core);
    let group = GroupId::numbered(1);

    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.host(sender).join_at(SimTime::from_secs(1), group, vec![core]);
    for k in 0..5u64 {
        cw.host(sender).send_at(
            SimTime::from_secs(3) + SimDuration::from_millis(200 * k),
            group,
            format!("pkt{k}").into_bytes(),
            16,
        );
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(6));
    let got = cw.host(h).received();
    assert_eq!(got.len(), 5, "five packets, one copy each: {got:?}");
    assert!(await_quiescence(&mut cw, &[group], SimDuration::from_secs(30)));
    assert_tree_invariants(&cw, &[group]);
}
