//! Fault injection: the protocol must converge through packet loss and
//! corruption — that is what the §9 retransmission timers exist for —
//! and identical seeds must replay identically even under faults.
//!
//! Convergence is asserted through the shared tree-invariant checker
//! (`cbt::explore`): not just "every member's router is on-tree" but
//! full parent/child symmetry, rootedness, and loop freedom.

use cbt::explore::{assert_tree_invariants, await_quiescence};
use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{FaultPlan, SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;

fn build(seed: u64, fault: FaultPlan) -> (CbtWorld, Vec<NodeId>, GroupId) {
    let graph = generate::waxman(generate::WaxmanParams { n: 20, ..Default::default() }, 4);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core_addr = net.router_addr(RouterId(0));
    let group = GroupId::numbered(1);
    let members: Vec<NodeId> = (2..20).step_by(4).map(|i| NodeId(i as u32)).collect();
    let mut cw =
        CbtWorld::build(net, CbtConfig::fast(), WorldConfig { fault, seed, ..Default::default() });
    for m in &members {
        cw.host(HostId(m.0)).join_at(SimTime::from_secs(1), group, vec![core_addr]);
    }
    (cw, members, group)
}

/// Post-storm convergence check: heal, let the fleet quiesce, then run
/// the full invariant suite (member attachment, FIB symmetry, loop
/// freedom, obs consistency) instead of a hand-rolled `is_on_tree`
/// sweep.
fn assert_converged(cw: &mut CbtWorld, group: GroupId) {
    cw.world.set_fault_plan(FaultPlan::none());
    cw.world.run_until(SimTime::from_secs(100)); // recovery phase
    assert!(
        await_quiescence(cw, &[group], SimDuration::from_secs(60)),
        "fleet failed to quiesce after the faults stopped"
    );
    assert_tree_invariants(cw, &[group]);
}

/// 10% loss for a whole minute of chaos, then the network heals: every
/// member must be attached once the storm passes. (During the storm,
/// transient detach/re-attach cycles are *correct* §6.1 behaviour —
/// lost echo rounds legitimately trigger re-attachment — so the
/// assertion targets post-storm convergence.)
#[test]
fn joins_converge_through_packet_loss() {
    for seed in 0..5u64 {
        let (mut cw, _members, group) = build(seed, FaultPlan::drops(0.10));
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(60)); // chaos phase
        let (_, _, dropped) = cw.world.fault_stats();
        assert!(dropped > 0, "seed {seed}: the storm really dropped packets");
        assert_converged(&mut cw, group);
    }
}

/// 10% single-bit corruption: checksums turn corruption into loss; the
/// protocol must neither crash nor accept a mangled message.
#[test]
fn corruption_is_no_worse_than_loss() {
    let (mut cw, _members, group) = build(7, FaultPlan::corruption(0.10));
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(60)); // chaos phase
    let (_, corrupted, _) = cw.world.fault_stats();
    assert!(corrupted > 0, "the fault injector corrupted something");
    assert_converged(&mut cw, group);
}

/// Same seed ⇒ bit-identical run, faults included.
#[test]
fn faulty_runs_replay_deterministically() {
    let run = |seed: u64| {
        let (mut cw, members, group) = build(
            seed,
            FaultPlan { drop_chance: 0.15, corrupt_chance: 0.1, ..FaultPlan::default() },
        );
        // A data transmission mid-churn for extra coverage.
        cw.host(HostId(members[0].0)).send_at(SimTime::from_secs(12), group, b"probe".to_vec(), 64);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(30));
        let states: Vec<(bool, Option<cbt_wire::Addr>)> = (0..20u32)
            .map(|i| {
                let e = cw.router(RouterId(i)).engine();
                (e.is_on_tree(group), e.parent_of(group))
            })
            .collect();
        (cw.world.trace().totals(), states)
    };
    assert_eq!(run(3), run(3), "identical seeds replay identically");
    assert_ne!(run(3).0, run(4).0, "different seeds genuinely differ");
}

/// Loss during steady state must not spuriously tear the tree down:
/// echo timeout (9 s fast) tolerates two lost echo rounds (3 s apart).
#[test]
fn keepalives_survive_mild_loss() {
    let (mut cw, members, group) = build(11, FaultPlan::drops(0.05));
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(60));
    let mut failures = 0;
    for m in &members {
        failures += cw.router(RouterId(m.0)).engine().stats().parent_failures;
    }
    // A rare false failure is tolerable (the router re-attaches — that
    // is §6.1 working as designed), but wholesale flapping is a bug.
    assert!(failures <= 3, "excessive parent-failure flapping: {failures}");
    assert_converged(&mut cw, group);
}
