//! Router restarts (§6.2): a restarted router comes back with *empty*
//! protocol state. A core re-learns its role from the core list in the
//! next join; a non-core transit router is pulled back in when a
//! downstream join crosses it or its own subnets need service.
//!
//! Recovered end states are validated by the shared tree-invariant
//! checker (`cbt::explore`) on top of the §6.2-specific assertions.

use cbt::explore::{assert_tree_invariants, await_quiescence};
use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::GroupId;

/// A — R0 — R1 — R2(core), member behind R0, second member behind R3
/// hanging off R1.
fn net4() -> (NetworkSpec, [RouterId; 4], [HostId; 2]) {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let r2 = b.router("R2");
    let r3 = b.router("R3");
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let a = b.host("A", s0);
    b.link(r0, r1, 1);
    b.link(r1, r2, 1);
    b.link(r1, r3, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r3);
    let c = b.host("C", s1);
    (b.build(), [r0, r1, r2, r3], [a, c])
}

/// §6.2 core restart: "a core only becomes aware that it is [a core] by
/// receiving a JOIN-REQUEST."
#[test]
fn core_restart_relearns_role_from_next_join() {
    let (net, [r0, _r1, r2, _r3], [a, c]) = net4();
    let core_addr = net.router_addr(r2);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(a).join_at(SimTime::from_secs(1), group, vec![core_addr]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(4));
    assert!(cw.router(r2).engine().is_on_tree(group));
    assert!(cw.router(r2).engine().fib().get(group).unwrap().i_am_core);

    // The core dies and comes back with a blank engine.
    cw.fail_router(r2);
    cw.world.run_until(SimTime::from_secs(6));
    cw.restart_router(r2, cw.world.now());
    assert!(!cw.router(r2).engine().is_on_tree(group), "restart wiped all state");

    // A second member joins: its join carries the core list (§6.2), so
    // the restarted core rediscovers itself and acks.
    let at = cw.world.now() + SimDuration::from_millis(100);
    cw.host(c).join_at(at, group, vec![core_addr]);
    cw.touch_host(c);
    cw.world.run_until(SimTime::from_secs(12));
    let engine = cw.router(r2).engine();
    assert!(engine.is_on_tree(group), "core re-learned its role from the join");
    assert!(engine.fib().get(group).unwrap().i_am_core);
    assert!(engine.fib().get(group).unwrap().parent.is_none(), "primary core: no parent");

    // The ORIGINAL branch (R0's) recovers too: R0's echoes toward the
    // core died during the outage; §6.1 re-attachment (single core: the
    // same one) rebuilds it within the echo-timeout + rejoin budget.
    cw.world.run_until(SimTime::from_secs(40));
    assert!(
        cw.router(r0).engine().is_on_tree(group),
        "pre-restart branch re-attached after the outage"
    );
    // Full recovery means a fully consistent tree, not just "R0 is on".
    assert!(await_quiescence(&mut cw, &[group], SimDuration::from_secs(60)));
    assert_tree_invariants(&cw, &[group]);
}

/// Non-core restart (§6.2): the router rejoins only when "a downstream
/// router sends a JOIN_REQUEST through it, or it is elected DR for one
/// of its directly attached subnets" with members.
#[test]
fn transit_router_restart_pulled_back_by_downstream_join() {
    let (net, [_r0, r1, r2, _r3], [a, c]) = net4();
    let core_addr = net.router_addr(r2);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(a).join_at(SimTime::from_secs(1), group, vec![core_addr]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(4));
    assert!(cw.router(r1).engine().is_on_tree(group), "R1 is transit for A's branch");

    cw.fail_router(r1);
    cw.world.run_until(SimTime::from_secs(6));
    cw.restart_router(r1, cw.world.now());
    assert!(!cw.router(r1).engine().is_on_tree(group));

    // A new member joins behind R3; its join crosses R1.
    let at = cw.world.now() + SimDuration::from_millis(100);
    cw.host(c).join_at(at, group, vec![core_addr]);
    cw.touch_host(c);
    cw.world.run_until(SimTime::from_secs(12));
    assert!(
        cw.router(r1).engine().is_on_tree(group),
        "the downstream join re-established the restarted transit router"
    );
    // End-to-end sanity: C and A exchange data after full recovery.
    cw.world.run_until(SimTime::from_secs(40));
    let t_send = cw.world.now();
    cw.host(c).send_at(t_send, group, b"post-restart".to_vec(), 16);
    cw.touch_host(c);
    cw.world.run_for(SimDuration::from_secs(2));
    assert!(
        cw.host(a).received().iter().any(|d| d.payload == b"post-restart"),
        "delivery across the restarted router"
    );
    assert!(await_quiescence(&mut cw, &[group], SimDuration::from_secs(60)));
    assert_tree_invariants(&cw, &[group]);
}
