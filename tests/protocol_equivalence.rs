//! Differential test: the tree the packet-level protocol actually
//! builds must equal the graph-level prediction (union of member→core
//! unicast shortest paths) that the quantitative experiments
//! (S93-T1/T2/F1/F2) are computed from. This is the bridge that makes
//! the graph-level sweeps statements about the *protocol*, not just
//! about graphs.

use cbt::{CbtConfig, CbtWorld};
use cbt_baselines::cbt_shared_tree;
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, AllPairs, Graph, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::GroupId;
use std::collections::BTreeSet;

/// Extracts the protocol-built tree as a router-level edge set:
/// (child router, parent router) pairs from every FIB entry.
fn protocol_tree(cw: &mut CbtWorld, n: usize, group: GroupId) -> BTreeSet<(u32, u32)> {
    let mut edges = BTreeSet::new();
    for i in 0..n {
        let r = RouterId(i as u32);
        let Some(parent_addr) = cw.router(r).engine().parent_of(group) else { continue };
        let parent = cw.net.router_of(parent_addr).expect("parent is a router");
        let (a, b) = if r.0 < parent.0 { (r.0, parent.0) } else { (parent.0, r.0) };
        edges.insert((a, b));
    }
    edges
}

fn graph_tree_edges(tree: &Graph) -> BTreeSet<(u32, u32)> {
    tree.edges().map(|(a, b, _)| (a.0.min(b.0), a.0.max(b.0))).collect()
}

#[test]
fn protocol_tree_matches_graph_prediction_across_seeds() {
    for seed in 0..5u64 {
        let graph = generate::waxman(generate::WaxmanParams { n: 30, ..Default::default() }, seed);
        let ap = AllPairs::compute(&graph);
        // Deterministic member draw: every third router.
        let members: Vec<NodeId> = (0..30).step_by(3).map(|i| NodeId(i as u32)).collect();
        let core = ap.medoid(&members).expect("connected");
        let members: Vec<NodeId> = members.into_iter().filter(|m| *m != core).collect();

        // Graph-level prediction.
        let predicted = cbt_shared_tree(&graph, core, &members);

        // Packet-level protocol run.
        let net = NetworkSpec::from_graph_with_stub_lans(&graph);
        let core_addr = net.router_addr(RouterId(core.0));
        let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
        for m in &members {
            cw.host(HostId(m.0)).join_at(
                SimTime::from_secs(1),
                GroupId::numbered(1),
                vec![core_addr],
            );
        }
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(10));

        let built = protocol_tree(&mut cw, 30, GroupId::numbered(1));
        let predicted = graph_tree_edges(&predicted);
        assert_eq!(
            built, predicted,
            "seed {seed}: protocol tree diverged from the unicast-shortest-path prediction"
        );
    }
}

/// The protocol tree is always loop-free, spans exactly the member DRs
/// plus the routers between them and the core, and every on-tree
/// non-core router has exactly one parent.
#[test]
fn protocol_tree_invariants_under_staggered_joins() {
    let graph = generate::waxman(generate::WaxmanParams { n: 25, ..Default::default() }, 9);
    let members: Vec<NodeId> = (1..25).step_by(2).map(|i| NodeId(i as u32)).collect();
    let core = NodeId(0);
    let net = NetworkSpec::from_graph_with_stub_lans(&graph);
    let core_addr = net.router_addr(RouterId(0));
    let group = GroupId::numbered(2);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    // Joins staggered so later ones hit the growing tree mid-flight.
    for (i, m) in members.iter().enumerate() {
        cw.host(HostId(m.0)).join_at(
            SimTime::from_secs(1) + SimDuration::from_millis(137 * i as u64),
            group,
            vec![core_addr],
        );
    }
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(15));

    // Reconstruct as a graph and check the invariants.
    let mut tree = Graph::with_nodes(25);
    let mut on_tree_routers = Vec::new();
    for i in 0..25u32 {
        let engine_on = cw.router(RouterId(i)).engine().is_on_tree(group);
        if engine_on {
            on_tree_routers.push(NodeId(i));
        }
        if let Some(p) = cw.router(RouterId(i)).engine().parent_of(group) {
            let parent = cw.net.router_of(p).unwrap();
            tree.add_edge(NodeId(i), NodeId(parent.0), 1);
        }
    }
    assert!(tree.is_forest(), "parent pointers form no cycle");
    // Every member DR is on-tree, and connected to the core within the
    // parent-pointer graph.
    let sp = cbt_topology::ShortestPaths::dijkstra(&tree, core);
    for m in &members {
        assert!(cw.router(RouterId(m.0)).engine().is_on_tree(group), "member DR {m} attached");
        assert!(sp.dist(*m).is_some(), "member DR {m} reaches the core through the tree");
    }
    // The core has no parent; everyone else on-tree has exactly one.
    assert_eq!(cw.router(RouterId(core.0)).engine().parent_of(group), None);
}
