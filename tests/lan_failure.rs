//! Multi-access segments as *transit* media: a LAN that is itself a
//! tree branch (spec §5: "a multi-access subnetwork ... could
//! potentially be both a CBT tree branch and a subnetwork with group
//! member presence") can fail like any link; the branch re-attaches
//! around it.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, LanId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::GroupId;

/// The core reaches Rleaf two ways: over transit LAN T (1 hop) or via
/// the backup router chain (2 hops). Member host behind Rleaf.
///
/// ```text
///           [T: Rcore, Rleaf]      (transit LAN, preferred path)
///   Rcore ——— Rmid ——— Rleaf       (backup p2p chain)
///   Rleaf —[S: member]
/// ```
fn transit_lan_net() -> (NetworkSpec, RouterId, RouterId, LanId, HostId) {
    let mut b = NetworkBuilder::new();
    let r_core = b.router("Rcore");
    let r_mid = b.router("Rmid");
    let r_leaf = b.router("Rleaf");
    let transit = b.lan("T");
    b.attach(transit, r_core);
    b.attach(transit, r_leaf);
    b.link(r_core, r_mid, 1);
    b.link(r_mid, r_leaf, 1);
    let s = b.lan("S");
    b.attach(s, r_leaf);
    let h = b.host("H", s);
    (b.build(), r_core, r_leaf, transit, h)
}

#[test]
fn tree_branch_over_a_lan_then_reroutes_when_it_fails() {
    let (net, r_core, r_leaf, transit, h) = transit_lan_net();
    let core = net.router_addr(r_core);
    let group = GroupId::numbered(1);
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(4));

    // The branch initially runs over the transit LAN (1 hop beats 2).
    let parent = cw.router(r_leaf).engine().parent_of(group).expect("attached");
    let on_lan_subnet = {
        let net = cw.net.clone();
        let lan_spec = &net.lans[transit.0 as usize];
        parent.same_subnet(lan_spec.subnet, lan_spec.mask)
    };
    assert!(on_lan_subnet, "parent {parent} should be Rcore's address on the transit LAN");

    // The LAN dies. Echoes over it vanish; after the fast echo timeout
    // Rleaf re-attaches over the p2p chain through Rmid.
    cw.fail_lan(transit);
    cw.world.run_until(SimTime::from_secs(30));
    let parent = cw.router(r_leaf).engine().parent_of(group).expect("re-attached");
    let via_chain = parent == Addr_on_chain(&mut cw, r_leaf);
    assert!(via_chain, "parent now Rmid's link address, got {parent}");

    // And the data plane followed: host still receives from the core
    // side. (Send from a second member joined at the core's own LAN —
    // simplest: the core itself has no host, so attach via engine-less
    // check of delivery using the member on S as receiver only.)
    // Instead verify keepalives now flow on the new branch: no further
    // parent failures accumulate.
    let failures_now = cw.router(r_leaf).engine().stats().parent_failures;
    cw.world.run_for(SimDuration::from_secs(20));
    assert_eq!(
        cw.router(r_leaf).engine().stats().parent_failures,
        failures_now,
        "the rerouted branch is stable"
    );
}

/// Rmid's link address as seen from Rleaf (the expected new parent).
#[allow(non_snake_case)]
fn Addr_on_chain(cw: &mut CbtWorld, r_leaf: RouterId) -> cbt_wire::Addr {
    // Rmid—Rleaf is link index 1 (second created); Rmid is endpoint `a`.
    let net = cw.net.clone();
    let link = net.links[1];
    assert_eq!(link.b, r_leaf);
    let rmid = &net.routers[link.a.0 as usize];
    rmid.ifaces
        .iter()
        .find(|i| {
            matches!(i.attachment, cbt_topology::Attachment::Link { peer, .. } if peer == r_leaf)
        })
        .expect("Rmid's iface to Rleaf")
        .addr
}

/// A *member* LAN failing silences its hosts' reports; presence expires
/// and the branch is quit — then the LAN heals and service returns.
#[test]
fn member_lan_outage_and_recovery() {
    let (net, r_core, r_leaf, _transit, h) = transit_lan_net();
    let core = net.router_addr(r_core);
    let group = GroupId::numbered(1);
    let member_lan = net.hosts[h.0 as usize].lan;
    let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
    cw.host(h).join_at(SimTime::from_secs(1), group, vec![core]);
    cw.world.start();
    cw.world.run_until(SimTime::from_secs(4));
    assert!(cw.router(r_leaf).engine().is_on_tree(group));

    // Member LAN goes dark: reports stop; fast membership timeout is
    // 22 s, then Rleaf quits.
    cw.fail_lan(member_lan);
    cw.world.run_until(SimTime::from_secs(40));
    assert!(!cw.router(r_leaf).engine().is_on_tree(group), "presence expired, branch quit");

    // LAN restored: the host answers the next query; the DR re-joins.
    cw.restore_lan(member_lan);
    cw.world.run_until(SimTime::from_secs(70));
    assert!(
        cw.router(r_leaf).engine().is_on_tree(group),
        "membership re-detected after the outage"
    );
}
