//! Task utilities: `spawn`, `JoinHandle`, `yield_now`.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

pub use crate::runtime::{JoinError, JoinHandle};

/// Spawns `fut` onto the runtime the caller is running on.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    crate::runtime::spawn_current(fut)
}

/// Yields once back to the scheduler.
pub async fn yield_now() {
    struct YieldNow {
        yielded: bool,
    }
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow { yielded: false }.await
}
