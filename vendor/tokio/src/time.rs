//! Timers for the vendored tokio stand-in: a paused/real dual clock, a
//! binary-heap timer queue, `sleep`/`sleep_until`/`timeout`, and the
//! runtime-bound `Instant`.

use crate::runtime::{context, lock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

pub use std::time::Duration;

/// The runtime clock: wall time normally, frozen virtual time when
/// paused (`start_paused` / `time::pause`).
pub(crate) struct Clock {
    paused: AtomicBool,
    inner: Mutex<ClockInner>,
}

struct ClockInner {
    origin: std::time::Instant,
    frozen_nanos: u128,
}

impl Clock {
    pub(crate) fn new(paused: bool) -> Clock {
        Clock {
            paused: AtomicBool::new(paused),
            inner: Mutex::new(ClockInner { origin: std::time::Instant::now(), frozen_nanos: 0 }),
        }
    }

    pub(crate) fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    pub(crate) fn now_nanos(&self) -> u128 {
        let inner = lock(&self.inner);
        if self.is_paused() {
            inner.frozen_nanos
        } else {
            inner.origin.elapsed().as_nanos()
        }
    }

    /// Paused mode: move the clock forward (never backward).
    pub(crate) fn set_nanos(&self, nanos: u128) {
        let mut inner = lock(&self.inner);
        if nanos > inner.frozen_nanos {
            inner.frozen_nanos = nanos;
        }
    }

    pub(crate) fn pause(&self) {
        let mut inner = lock(&self.inner);
        if !self.is_paused() {
            inner.frozen_nanos = inner.origin.elapsed().as_nanos();
            self.paused.store(true, Ordering::Release);
        }
    }

    pub(crate) fn resume(&self) {
        let mut inner = lock(&self.inner);
        if self.is_paused() {
            let frozen = inner.frozen_nanos;
            let offset = Duration::from_nanos(frozen.min(u64::MAX as u128) as u64);
            inner.origin = std::time::Instant::now()
                .checked_sub(offset)
                .unwrap_or_else(std::time::Instant::now);
            self.paused.store(false, Ordering::Release);
        }
    }

    pub(crate) fn advance_nanos(&self, nanos: u128) {
        let mut inner = lock(&self.inner);
        inner.frozen_nanos += nanos;
    }
}

/// The pending-timer heap: deadlines plus cancellable waker slots.
pub(crate) struct Timers {
    inner: Mutex<TimerHeap>,
}

struct TimerHeap {
    heap: BinaryHeap<Reverse<(u128, u64)>>,
    wakers: HashMap<u64, Waker>,
    next_id: u64,
}

impl Timers {
    pub(crate) fn new() -> Timers {
        Timers {
            inner: Mutex::new(TimerHeap {
                heap: BinaryHeap::new(),
                wakers: HashMap::new(),
                next_id: 0,
            }),
        }
    }

    pub(crate) fn register(&self, deadline_nanos: u128, waker: Waker) -> u64 {
        let mut t = lock(&self.inner);
        let id = t.next_id;
        t.next_id += 1;
        t.heap.push(Reverse((deadline_nanos, id)));
        t.wakers.insert(id, waker);
        id
    }

    pub(crate) fn update_waker(&self, id: u64, waker: Waker) {
        let mut t = lock(&self.inner);
        if let Some(slot) = t.wakers.get_mut(&id) {
            *slot = waker;
        }
    }

    pub(crate) fn cancel(&self, id: u64) {
        lock(&self.inner).wakers.remove(&id);
    }

    /// Earliest live deadline, compacting cancelled heap heads.
    pub(crate) fn earliest(&self) -> Option<u128> {
        let mut t = lock(&self.inner);
        while let Some(Reverse((at, id))) = t.heap.peek().copied() {
            if t.wakers.contains_key(&id) {
                return Some(at);
            }
            t.heap.pop();
        }
        None
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.earliest().is_none()
    }

    /// Pops every timer due at `now_nanos` and returns their wakers.
    pub(crate) fn take_due(&self, now_nanos: u128) -> Vec<Waker> {
        let mut due = Vec::new();
        let mut t = lock(&self.inner);
        while let Some(Reverse((at, id))) = t.heap.peek().copied() {
            if at > now_nanos {
                break;
            }
            t.heap.pop();
            if let Some(w) = t.wakers.remove(&id) {
                due.push(w);
            }
        }
        due
    }
}

/// A measurement of the runtime's clock, opaque and monotonic.
/// Nanoseconds since the runtime's epoch; meaningful only within one
/// runtime, which is how the workspace uses it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    nanos: u128,
}

impl Instant {
    /// The current instant of the active runtime's clock (virtual when
    /// time is paused).
    pub fn now() -> Instant {
        Instant { nanos: context::current().clock.now_nanos() }
    }

    /// Saturating difference, like tokio's (panics never).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        let d = self.nanos.saturating_sub(earlier.nanos);
        Duration::from_nanos(d.min(u64::MAX as u128) as u64)
    }

    /// Saturating difference against now.
    pub fn elapsed(&self) -> Duration {
        Instant::now().duration_since(*self)
    }

    /// Checked addition.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.nanos.checked_add(d.as_nanos()).map(|nanos| Instant { nanos })
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, d: Duration) -> Option<Instant> {
        self.nanos.checked_sub(d.as_nanos()).map(|nanos| Instant { nanos })
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant { nanos: self.nanos + d.as_nanos() }
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, d: Duration) {
        self.nanos += d.as_nanos();
    }
}

impl std::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, d: Duration) -> Instant {
        Instant { nanos: self.nanos.saturating_sub(d.as_nanos()) }
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        self.duration_since(other)
    }
}

/// Future returned by `sleep`/`sleep_until`.
pub struct Sleep {
    deadline: Instant,
    registration: Option<(Arc<crate::runtime::Shared>, u64)>,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }

    /// Has the deadline passed?
    pub fn is_elapsed(&self) -> bool {
        match &self.registration {
            Some((shared, _)) => shared.clock.now_nanos() >= self.deadline.nanos,
            None => false,
        }
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let shared = match &this.registration {
            Some((s, _)) => s.clone(),
            None => context::current(),
        };
        if shared.clock.now_nanos() >= this.deadline.nanos {
            if let Some((s, id)) = this.registration.take() {
                s.timers.cancel(id);
            }
            return Poll::Ready(());
        }
        match &this.registration {
            Some((s, id)) => s.timers.update_waker(*id, cx.waker().clone()),
            None => {
                let id = shared.timers.register(this.deadline.nanos, cx.waker().clone());
                this.registration = Some((shared, id));
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some((s, id)) = self.registration.take() {
            s.timers.cancel(id);
        }
    }
}

/// Completes `duration` from now.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep { deadline: Instant::now() + duration, registration: None }
}

/// Completes at `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, registration: None }
}

/// The error of a future that outran its `timeout` budget.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Limits `fut` to `duration`, biased toward the future at ties.
pub async fn timeout<F: Future>(duration: Duration, fut: F) -> Result<F::Output, Elapsed> {
    let mut sleep = std::pin::pin!(sleep(duration));
    let mut fut = std::pin::pin!(fut);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed(())));
        }
        Poll::Pending
    })
    .await
}

/// Freezes the active runtime's clock at its current reading.
pub fn pause() {
    context::current().clock.pause();
}

/// Unfreezes a paused clock back onto wall time.
pub fn resume() {
    context::current().clock.resume();
}

/// Moves a paused clock forward by `duration` and yields so due timers
/// fire before the caller resumes.
pub async fn advance(duration: Duration) {
    let shared = context::current();
    assert!(shared.clock.is_paused(), "time::advance requires a paused clock");
    shared.clock.advance_nanos(duration.as_nanos());
    crate::task::yield_now().await;
}
