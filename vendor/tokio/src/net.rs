//! Async UDP for the vendored tokio stand-in.
//!
//! Each `UdpSocket` wraps a blocking `std::net::UdpSocket` plus one
//! reader thread that parks in `recv_from` (with a short timeout so
//! shutdown is prompt), queues complete datagrams, and wakes the
//! pending receiver task. Sends go straight to the socket — UDP sends
//! on loopback do not block meaningfully — so `send_to`/`try_send_to`
//! are cheap and callable from any task.

use crate::runtime::lock;
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};
use std::time::Duration;

/// Received datagrams queued by the reader thread, capped so a stalled
/// receiver sheds load the way a kernel socket buffer would.
const RX_QUEUE_CAP: usize = 8192;

struct RxState {
    queue: VecDeque<(Vec<u8>, SocketAddr)>,
    waker: Option<Waker>,
    /// Reader thread hit a fatal error (socket gone).
    dead: Option<io::ErrorKind>,
}

/// A UDP socket usable from async tasks.
pub struct UdpSocket {
    sock: Arc<std::net::UdpSocket>,
    rx: Arc<Mutex<RxState>>,
    shutdown: Arc<AtomicBool>,
}

impl UdpSocket {
    /// Binds to `addr` and starts the reader thread.
    pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let sock = Arc::new(std::net::UdpSocket::bind(addr)?);
        sock.set_read_timeout(Some(Duration::from_millis(50)))?;
        let rx = Arc::new(Mutex::new(RxState { queue: VecDeque::new(), waker: None, dead: None }));
        let shutdown = Arc::new(AtomicBool::new(false));

        let t_sock = sock.clone();
        let t_rx = rx.clone();
        let t_shutdown = shutdown.clone();
        std::thread::Builder::new().name("tokio-udp-reader".into()).spawn(move || {
            let mut buf = vec![0u8; 65536];
            loop {
                if t_shutdown.load(Ordering::Acquire) {
                    break;
                }
                match t_sock.recv_from(&mut buf) {
                    Ok((len, from)) => {
                        let mut state = lock(&t_rx);
                        if state.queue.len() < RX_QUEUE_CAP {
                            state.queue.push_back((buf[..len].to_vec(), from));
                        }
                        let w = state.waker.take();
                        drop(state);
                        if let Some(w) = w {
                            w.wake();
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        continue;
                    }
                    Err(e) => {
                        let mut state = lock(&t_rx);
                        state.dead = Some(e.kind());
                        let w = state.waker.take();
                        drop(state);
                        if let Some(w) = w {
                            w.wake();
                        }
                        break;
                    }
                }
            }
        })?;

        Ok(UdpSocket { sock, rx, shutdown })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Receives one datagram, waiting until one arrives.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        std::future::poll_fn(|cx| {
            let mut state = lock(&self.rx);
            if let Some((dgram, from)) = state.queue.pop_front() {
                let n = dgram.len().min(buf.len());
                buf[..n].copy_from_slice(&dgram[..n]);
                return Poll::Ready(Ok((n, from)));
            }
            if let Some(kind) = state.dead {
                return Poll::Ready(Err(io::Error::from(kind)));
            }
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        })
        .await
    }

    /// Receives one datagram without waiting (`WouldBlock` when none
    /// is buffered).
    pub fn try_recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        let mut state = lock(&self.rx);
        if let Some((dgram, from)) = state.queue.pop_front() {
            let n = dgram.len().min(buf.len());
            buf[..n].copy_from_slice(&dgram[..n]);
            return Ok((n, from));
        }
        if let Some(kind) = state.dead {
            return Err(io::Error::from(kind));
        }
        Err(io::Error::from(io::ErrorKind::WouldBlock))
    }

    /// Sends one datagram to `target`.
    pub async fn send_to<A: std::net::ToSocketAddrs>(
        &self,
        buf: &[u8],
        target: A,
    ) -> io::Result<usize> {
        self.sock.send_to(buf, target)
    }

    /// Sends one datagram without waiting. UDP sends complete
    /// immediately here, so this never reports `WouldBlock`.
    pub fn try_send_to<A: std::net::ToSocketAddrs>(
        &self,
        buf: &[u8],
        target: A,
    ) -> io::Result<usize> {
        self.sock.send_to(buf, target)
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        // The reader thread exits on its next timeout tick.
        self.shutdown.store(true, Ordering::Release);
    }
}
