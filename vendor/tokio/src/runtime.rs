//! The cooperative executor at the heart of the vendored tokio
//! stand-in.
//!
//! One shared run queue of `Arc<Task>`s, woken via the standard
//! `std::task::Wake` machinery. Two flavors:
//!
//! - **current thread** — `block_on` interleaves polling the root
//!   future with draining the run queue on the calling thread. This is
//!   the only flavor that supports `start_paused` virtual time: when
//!   nothing is runnable, the clock jumps to the earliest pending
//!   timer deadline (tokio's auto-advance semantics).
//! - **multi thread** — `build` spawns worker threads that drain the
//!   same queue; `block_on` parks until the root future is woken.
//!
//! Timers live in a binary heap serviced opportunistically: whichever
//! thread goes idle parks no longer than the earliest deadline and
//! fires due wakers when it comes back. Cross-thread wakes (worker
//! threads, UDP reader threads) push onto the queue under its mutex
//! and signal one shared condvar, so no wakeup can be lost.

use std::any::Any;
use std::collections::VecDeque;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::time::{Clock, Timers};

/// Locks ignoring poisoning: a panicking *task* is already captured as
/// a `JoinError`, and runtime bookkeeping must keep working afterwards.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

type ErasedFuture = Pin<Box<dyn Future<Output = Box<dyn Any + Send>> + Send>>;

/// State shared by every handle into one runtime.
pub(crate) struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Parked workers and the `block_on` thread wait here.
    idle: Condvar,
    pub(crate) clock: Clock,
    pub(crate) timers: Timers,
    root_woken: AtomicBool,
    shutdown: AtomicBool,
    multi: bool,
    /// Weak refs to every live task, aborted wholesale on shutdown so
    /// task-owned resources (sockets, channels) drop deterministically.
    tasks: Mutex<Vec<Weak<Task>>>,
}

impl Shared {
    fn new(multi: bool, paused: bool) -> Shared {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            clock: Clock::new(paused),
            timers: Timers::new(),
            root_woken: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            multi,
            tasks: Mutex::new(Vec::new()),
        }
    }

    fn push_task(&self, t: Arc<Task>) {
        let mut q = lock(&self.queue);
        q.push_back(t);
        self.idle.notify_all();
    }

    fn wake_root(&self) {
        self.root_woken.store(true, Ordering::Release);
        // Take the queue lock so the store cannot race past a parked
        // thread's empty-check, then signal.
        let _q = lock(&self.queue);
        self.idle.notify_all();
    }

    fn fire_due_timers(&self) {
        for w in self.timers.take_due(self.clock.now_nanos()) {
            w.wake();
        }
    }

    /// Paused mode only: jump the clock to the earliest pending timer.
    fn advance_to_next_timer(&self) -> bool {
        let Some(n) = self.timers.earliest() else { return false };
        self.clock.set_nanos(n);
        self.fire_due_timers();
        true
    }

    fn real_time_until_next_timer(&self) -> Option<Duration> {
        let n = self.timers.earliest()?;
        let now = self.clock.now_nanos();
        Some(Duration::from_nanos(n.saturating_sub(now).min(u64::MAX as u128) as u64))
    }

    pub(crate) fn spawn_on<F>(self: &Arc<Self>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let erased = async move { Box::new(fut.await) as Box<dyn Any + Send> };
        let task = Arc::new(Task {
            shared: Arc::downgrade(self),
            state: AtomicU8::new(QUEUED),
            future: Mutex::new(Some(Box::pin(erased))),
            join: Mutex::new(Join { result: None, waker: None, abort: false }),
        });
        lock(&self.tasks).push(Arc::downgrade(&task));
        self.push_task(task.clone());
        JoinHandle { task, _out: PhantomData }
    }
}

/// One spawned future plus its scheduling and join state.
pub(crate) struct Task {
    shared: Weak<Shared>,
    state: AtomicU8,
    future: Mutex<Option<ErasedFuture>>,
    join: Mutex<Join>,
}

struct Join {
    result: Option<Result<Box<dyn Any + Send>, JoinError>>,
    waker: Option<Waker>,
    abort: bool,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        Task::schedule(&self);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        Task::schedule(self);
    }
}

impl Task {
    fn schedule(this: &Arc<Task>) {
        loop {
            match this.state.load(Ordering::Acquire) {
                IDLE => {
                    if this
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(sh) = this.shared.upgrade() {
                            sh.push_task(this.clone());
                        }
                        return;
                    }
                }
                RUNNING => {
                    if this
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                _ => return, // QUEUED, NOTIFIED, DONE: nothing to do
            }
        }
    }

    fn run(this: &Arc<Task>) {
        if this
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // aborted while queued
        }
        if lock(&this.join).abort {
            *lock(&this.future) = None;
            Task::finish(this, Err(JoinError::cancelled()));
            return;
        }
        let waker = Waker::from(this.clone());
        let mut cx = Context::from_waker(&waker);
        let mut guard = lock(&this.future);
        let Some(fut) = guard.as_mut() else {
            drop(guard);
            this.state.store(DONE, Ordering::Release);
            return;
        };
        let polled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Ready(v)) => {
                *guard = None;
                drop(guard);
                Task::finish(this, Ok(v));
            }
            Ok(Poll::Pending) => {
                drop(guard);
                if lock(&this.join).abort {
                    *lock(&this.future) = None;
                    Task::finish(this, Err(JoinError::cancelled()));
                    return;
                }
                if this
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // NOTIFIED while polling: run again.
                    this.state.store(QUEUED, Ordering::Release);
                    if let Some(sh) = this.shared.upgrade() {
                        sh.push_task(this.clone());
                    }
                }
            }
            Err(panic) => {
                *guard = None;
                drop(guard);
                Task::finish(this, Err(JoinError::panicked(panic)));
            }
        }
    }

    fn finish(this: &Arc<Task>, result: Result<Box<dyn Any + Send>, JoinError>) {
        this.state.store(DONE, Ordering::Release);
        let mut j = lock(&this.join);
        if j.result.is_none() {
            j.result = Some(result);
        }
        if let Some(w) = j.waker.take() {
            drop(j);
            w.wake();
        }
    }

    /// Cancels the task unless it already completed. Safe to call from
    /// any thread; a concurrently-running poll finishes first and the
    /// runner then observes the abort flag.
    pub(crate) fn abort_task(this: &Arc<Task>) {
        {
            let mut j = lock(&this.join);
            if j.result.is_some() {
                return;
            }
            j.abort = true;
        }
        let s = this.state.load(Ordering::Acquire);
        if s == IDLE || s == QUEUED {
            if let Ok(mut g) = this.future.try_lock() {
                if g.take().is_some() {
                    drop(g);
                    Task::finish(this, Err(JoinError::cancelled()));
                }
            }
        }
    }
}

/// An owned permission to join on a spawned task (awaiting its output
/// or aborting it), mirroring `tokio::task::JoinHandle`.
pub struct JoinHandle<T> {
    task: Arc<Task>,
    _out: PhantomData<fn() -> T>,
}

impl<T> JoinHandle<T> {
    /// Cancels the task; its future is dropped at the next opportunity.
    pub fn abort(&self) {
        Task::abort_task(&self.task);
    }

    /// Has the task completed (including by cancellation)?
    pub fn is_finished(&self) -> bool {
        self.task.state.load(Ordering::Acquire) == DONE
    }
}

impl<T: 'static> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut j = lock(&self.task.join);
        match j.result.take() {
            Some(Ok(v)) => Poll::Ready(Ok(*v.downcast::<T>().expect("join handle output type"))),
            Some(Err(e)) => Poll::Ready(Err(e)),
            None => {
                j.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Why a joined task produced no output.
pub struct JoinError {
    repr: JoinRepr,
}

enum JoinRepr {
    Cancelled,
    Panic(Box<dyn Any + Send>),
}

impl JoinError {
    fn cancelled() -> JoinError {
        JoinError { repr: JoinRepr::Cancelled }
    }
    fn panicked(p: Box<dyn Any + Send>) -> JoinError {
        JoinError { repr: JoinRepr::Panic(p) }
    }
    /// Was the task cancelled via `abort`?
    pub fn is_cancelled(&self) -> bool {
        matches!(self.repr, JoinRepr::Cancelled)
    }
    /// Did the task panic?
    pub fn is_panic(&self) -> bool {
        matches!(self.repr, JoinRepr::Panic(_))
    }
    /// Consumes the error, yielding the panic payload.
    pub fn into_panic(self) -> Box<dyn Any + Send> {
        match self.repr {
            JoinRepr::Panic(p) => p,
            JoinRepr::Cancelled => panic!("JoinError was cancellation, not a panic"),
        }
    }
}

impl std::fmt::Debug for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.repr {
            JoinRepr::Cancelled => write!(f, "JoinError::Cancelled"),
            JoinRepr::Panic(_) => write!(f, "JoinError::Panic(..)"),
        }
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.repr {
            JoinRepr::Cancelled => write!(f, "task was cancelled"),
            JoinRepr::Panic(_) => write!(f, "task panicked"),
        }
    }
}

impl std::error::Error for JoinError {}

/// The per-thread runtime context (which `Shared` do `spawn`, timers
/// and `Instant::now` bind to).
pub(crate) mod context {
    use super::Shared;
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static STACK: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
    }

    pub(crate) struct EnterGuard;

    impl Drop for EnterGuard {
        fn drop(&mut self) {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }

    pub(crate) fn enter(shared: Arc<Shared>) -> EnterGuard {
        STACK.with(|s| s.borrow_mut().push(shared));
        EnterGuard
    }

    pub(crate) fn try_current() -> Option<Arc<Shared>> {
        STACK.with(|s| s.borrow().last().cloned())
    }

    pub(crate) fn current() -> Arc<Shared> {
        try_current().expect(
            "there is no reactor running, must be called from the context of a Tokio 1.x runtime",
        )
    }
}

/// Builds runtimes with a chosen flavor, mirroring
/// `tokio::runtime::Builder`.
pub struct Builder {
    multi: bool,
    paused: bool,
    workers: Option<usize>,
}

impl Builder {
    /// Single-threaded scheduler driven by `block_on`.
    pub fn new_current_thread() -> Builder {
        Builder { multi: false, paused: false, workers: None }
    }

    /// Worker-thread pool scheduler.
    pub fn new_multi_thread() -> Builder {
        Builder { multi: true, paused: false, workers: None }
    }

    /// Accepted for API compatibility; every driver is always enabled.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Accepted for API compatibility.
    pub fn enable_time(&mut self) -> &mut Builder {
        self
    }

    /// Accepted for API compatibility.
    pub fn enable_io(&mut self) -> &mut Builder {
        self
    }

    /// Number of worker threads (multi-thread flavor only).
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        self.workers = Some(n.max(1));
        self
    }

    /// Starts the runtime with time paused (current-thread only):
    /// `Instant::now` is virtual and auto-advances to the earliest
    /// pending timer whenever the scheduler has nothing runnable.
    pub fn start_paused(&mut self, paused: bool) -> &mut Builder {
        self.paused = paused;
        self
    }

    /// Builds the runtime.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        if self.paused && self.multi {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "start_paused requires the current-thread flavor",
            ));
        }
        let shared = Arc::new(Shared::new(self.multi, self.paused));
        let mut workers = Vec::new();
        if self.multi {
            let n = self.workers.unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
            });
            for i in 0..n {
                let sh = shared.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("tokio-worker-{i}"))
                        .spawn(move || worker_loop(sh))?,
                );
            }
        }
        Ok(Runtime { shared, workers })
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let _guard = context::enter(shared.clone());
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        shared.fire_due_timers();
        let task = lock(&shared.queue).pop_front();
        if let Some(t) = task {
            Task::run(&t);
            continue;
        }
        let wait = shared.real_time_until_next_timer().unwrap_or(Duration::from_millis(100));
        let q = lock(&shared.queue);
        if !q.is_empty() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        let _ = shared.idle.wait_timeout(q, wait);
    }
}

/// A handle to one runtime instance.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct RootWake {
    shared: Arc<Shared>,
}

impl Wake for RootWake {
    fn wake(self: Arc<Self>) {
        self.shared.wake_root();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.wake_root();
    }
}

impl Runtime {
    /// A multi-thread runtime with default worker count.
    pub fn new() -> std::io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// Spawns a future onto this runtime.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.shared.spawn_on(fut)
    }

    /// Runs `fut` to completion, driving spawned tasks meanwhile.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let shared = &self.shared;
        let _guard = context::enter(shared.clone());
        let mut fut = std::pin::pin!(fut);
        let root_waker = Waker::from(Arc::new(RootWake { shared: shared.clone() }));
        let mut cx = Context::from_waker(&root_waker);
        shared.root_woken.store(true, Ordering::Release);
        loop {
            if shared.root_woken.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                    return v;
                }
                continue; // the poll may have spawned tasks or armed timers
            }
            if !shared.multi {
                shared.fire_due_timers();
                let task = lock(&shared.queue).pop_front();
                if let Some(t) = task {
                    Task::run(&t);
                    continue;
                }
                if shared.clock.is_paused() && shared.advance_to_next_timer() {
                    continue;
                }
            }
            self.park_until_activity();
        }
    }

    fn park_until_activity(&self) {
        let shared = &self.shared;
        let paused = shared.clock.is_paused();
        let wait = if paused {
            // Nothing runnable, no timer to advance to: only an
            // external thread can unblock us. Bound the wait so a true
            // deadlock fails loudly instead of hanging forever.
            Duration::from_secs(10)
        } else {
            shared.real_time_until_next_timer().unwrap_or(Duration::from_millis(100))
        };
        let q = lock(&shared.queue);
        if !q.is_empty() || shared.root_woken.load(Ordering::Acquire) {
            return;
        }
        let (q, res) = shared.idle.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
        if paused
            && res.timed_out()
            && q.is_empty()
            && !shared.root_woken.load(Ordering::Acquire)
            && shared.timers.is_empty()
        {
            panic!(
                "vendored tokio: paused runtime idled {wait:?} with no runnable task and no \
                 pending timer — the test has deadlocked"
            );
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _q = lock(&self.shared.queue);
            self.shared.idle.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Drop every remaining task's future so owned resources are
        // released now, not at process exit.
        let tasks: Vec<_> = std::mem::take(&mut *lock(&self.shared.tasks));
        for t in tasks {
            if let Some(t) = t.upgrade() {
                Task::abort_task(&t);
            }
        }
        lock(&self.shared.queue).clear();
    }
}

/// Spawns onto the runtime the calling context belongs to.
pub(crate) fn spawn_current<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    context::current().spawn_on(fut)
}
