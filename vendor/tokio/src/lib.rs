//! Offline placeholder for `tokio`.
//!
//! This build environment has no network access to crates.io, so the
//! real tokio cannot be vendored. Crates that need the live runtime
//! (`cbt-node`'s fabric/live/udp modules, the tunnel-overlay
//! integration test, the `live_tokio` example) are gated behind a
//! non-default `live` cargo feature and document that they require the
//! genuine dependency. Everything else — the entire deterministic
//! simulator and evaluation suite — is tokio-free.

#![forbid(unsafe_code)]
