//! Offline stand-in for `tokio`, scoped to the API surface this
//! workspace uses. Unlike the other vendored crates this is a real
//! runtime, not a shim: a cooperative executor (current-thread and
//! multi-thread flavors) with `std::task::Wake`-based scheduling,
//! timers with tokio's paused/virtual-time semantics (`start_paused`
//! auto-advances to the earliest deadline when idle), bounded and
//! unbounded mpsc + oneshot channels, UDP sockets backed by a reader
//! thread, `select!` (biased poll order), and the `#[tokio::main]` /
//! `#[tokio::test]` attribute macros via the vendored `tokio-macros`.
//!
//! Scope notes:
//! - `select!` always polls branches in declaration order (i.e. it
//!   behaves as if `biased;` were always present) and requires block
//!   bodies; that covers — conservatively — every use in this repo.
//! - `Instant` is runtime-bound: nanoseconds since the runtime's
//!   epoch, comparable only within one runtime.

#![forbid(unsafe_code)]

pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};

/// Internal helpers the `select!` expansion names; not public API.
#[doc(hidden)]
pub mod macros {
    /// Which of two branches completed first.
    pub enum Sel2<A, B> {
        A(A),
        B(B),
    }
    /// Which of three branches completed first.
    pub enum Sel3<A, B, C> {
        A(A),
        B(B),
        C(C),
    }
    /// Which of four branches completed first.
    pub enum Sel4<A, B, C, D> {
        A(A),
        B(B),
        C(C),
        D(D),
    }
}

/// Waits on multiple concurrent branches, running the body of the
/// first to complete. Branches are always polled in declaration order
/// (`biased;` is accepted and is also the only behavior). Bodies must
/// be blocks: `pat = future => { ... }`.
#[macro_export]
macro_rules! select {
    (biased; $($rest:tt)+) => { $crate::__select_munch!(@munch [] $($rest)+) };
    ($($rest:tt)+) => { $crate::__select_munch!(@munch [] $($rest)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select_munch {
    // All branches consumed: emit.
    (@munch [$($done:tt)*]) => { $crate::__select_emit!($($done)*) };
    // Start of a branch: capture its pattern, munch its expression.
    (@munch [$($done:tt)*] $p:pat = $($rest:tt)+) => {
        $crate::__select_munch!(@expr [$($done)*] [$p] [] $($rest)+)
    };
    // Expression complete at `=>` + block body (with or without a
    // trailing comma).
    (@expr [$($done:tt)*] [$p:pat] [$($e:tt)+] => $b:block , $($rest:tt)*) => {
        $crate::__select_munch!(@munch [$($done)* { [$p] [$($e)+] [$b] }] $($rest)*)
    };
    (@expr [$($done:tt)*] [$p:pat] [$($e:tt)+] => $b:block $($rest:tt)*) => {
        $crate::__select_munch!(@munch [$($done)* { [$p] [$($e)+] [$b] }] $($rest)*)
    };
    // Otherwise: accumulate one more expression token.
    (@expr [$($done:tt)*] [$p:pat] [$($e:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__select_munch!(@expr [$($done)*] [$p] [$($e)* $t] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select_emit {
    ({ [$p1:pat] [$($e1:tt)+] [$b1:block] }
     { [$p2:pat] [$($e2:tt)+] [$b2:block] }) => {{
        let __sel_r = {
        let mut __sel_f1 = ::std::pin::pin!($($e1)+);
        let mut __sel_f2 = ::std::pin::pin!($($e2)+);
        ::std::future::poll_fn(|__cx| {
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f1.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel2::A(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f2.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel2::B(v));
            }
            ::std::task::Poll::Pending
        })
        .await
        };
        match __sel_r {
            $crate::macros::Sel2::A($p1) => $b1,
            $crate::macros::Sel2::B($p2) => $b2,
        }
    }};
    ({ [$p1:pat] [$($e1:tt)+] [$b1:block] }
     { [$p2:pat] [$($e2:tt)+] [$b2:block] }
     { [$p3:pat] [$($e3:tt)+] [$b3:block] }) => {{
        let __sel_r = {
        let mut __sel_f1 = ::std::pin::pin!($($e1)+);
        let mut __sel_f2 = ::std::pin::pin!($($e2)+);
        let mut __sel_f3 = ::std::pin::pin!($($e3)+);
        ::std::future::poll_fn(|__cx| {
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f1.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel3::A(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f2.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel3::B(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f3.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel3::C(v));
            }
            ::std::task::Poll::Pending
        })
        .await
        };
        match __sel_r {
            $crate::macros::Sel3::A($p1) => $b1,
            $crate::macros::Sel3::B($p2) => $b2,
            $crate::macros::Sel3::C($p3) => $b3,
        }
    }};
    ({ [$p1:pat] [$($e1:tt)+] [$b1:block] }
     { [$p2:pat] [$($e2:tt)+] [$b2:block] }
     { [$p3:pat] [$($e3:tt)+] [$b3:block] }
     { [$p4:pat] [$($e4:tt)+] [$b4:block] }) => {{
        let __sel_r = {
        let mut __sel_f1 = ::std::pin::pin!($($e1)+);
        let mut __sel_f2 = ::std::pin::pin!($($e2)+);
        let mut __sel_f3 = ::std::pin::pin!($($e3)+);
        let mut __sel_f4 = ::std::pin::pin!($($e4)+);
        ::std::future::poll_fn(|__cx| {
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f1.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel4::A(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f2.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel4::B(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f3.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel4::C(v));
            }
            if let ::std::task::Poll::Ready(v) =
                ::std::future::Future::poll(__sel_f4.as_mut(), __cx)
            {
                return ::std::task::Poll::Ready($crate::macros::Sel4::D(v));
            }
            ::std::task::Poll::Pending
        })
        .await
        };
        match __sel_r {
            $crate::macros::Sel4::A($p1) => $b1,
            $crate::macros::Sel4::B($p2) => $b2,
            $crate::macros::Sel4::C($p3) => $b3,
            $crate::macros::Sel4::D($p4) => $b4,
        }
    }};
}
