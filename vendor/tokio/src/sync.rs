//! Channel primitives for the vendored tokio stand-in: bounded and
//! unbounded mpsc plus oneshot, with tokio's signatures and error
//! types (the subset this workspace uses).

/// Multi-producer, single-consumer channels.
pub mod mpsc {
    use crate::runtime::lock;
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Channel error types.
    pub mod error {
        /// The receiver was dropped.
        #[derive(PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "SendError(..)")
            }
        }
        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }
        impl<T> std::error::Error for SendError<T> {}

        /// A `try_send` that could not complete.
        #[derive(PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The channel is at capacity.
            Full(T),
            /// The receiver was dropped.
            Closed(T),
        }

        impl<T> TrySendError<T> {
            /// Recovers the value that could not be sent.
            pub fn into_inner(self) -> T {
                match self {
                    TrySendError::Full(v) | TrySendError::Closed(v) => v,
                }
            }
        }

        impl<T> std::fmt::Debug for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
                    TrySendError::Closed(_) => write!(f, "TrySendError::Closed(..)"),
                }
            }
        }
        impl<T> std::fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "no available capacity"),
                    TrySendError::Closed(_) => write!(f, "channel closed"),
                }
            }
        }
        impl<T> std::error::Error for TrySendError<T> {}

        /// A `try_recv` on an empty or dead channel.
        #[derive(Debug, PartialEq, Eq, Clone, Copy)]
        pub enum TryRecvError {
            /// Nothing buffered right now.
            Empty,
            /// Every sender is gone and the buffer is drained.
            Disconnected,
        }

        impl std::fmt::Display for TryRecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                    TryRecvError::Disconnected => write!(f, "receiving on a closed channel"),
                }
            }
        }
        impl std::error::Error for TryRecvError {}
    }

    use error::{SendError, TryRecvError, TrySendError};

    struct Chan<T> {
        inner: Mutex<ChanInner<T>>,
    }

    struct ChanInner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        rx_alive: bool,
        rx_waker: Option<Waker>,
        /// Bounded senders waiting for capacity.
        tx_wakers: Vec<Waker>,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Chan<T>> {
            Arc::new(Chan {
                inner: Mutex::new(ChanInner {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    rx_alive: true,
                    rx_waker: None,
                    tx_wakers: Vec::new(),
                }),
            })
        }

        fn wake_rx(inner: &mut ChanInner<T>) -> Option<Waker> {
            inner.rx_waker.take()
        }

        fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.inner);
            if !inner.rx_alive {
                return Err(TrySendError::Closed(v));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(v));
            }
            inner.queue.push_back(v);
            let w = Chan::wake_rx(&mut inner);
            drop(inner);
            if let Some(w) = w {
                w.wake();
            }
            Ok(())
        }

        fn poll_recv(&self, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut inner = lock(&self.inner);
            if let Some(v) = inner.queue.pop_front() {
                // A slot freed: let every waiting sender retry.
                let txs = std::mem::take(&mut inner.tx_wakers);
                drop(inner);
                for w in txs {
                    w.wake();
                }
                return Poll::Ready(Some(v));
            }
            if inner.senders == 0 {
                return Poll::Ready(None);
            }
            inner.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }

        fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.inner);
            if let Some(v) = inner.queue.pop_front() {
                let txs = std::mem::take(&mut inner.tx_wakers);
                drop(inner);
                for w in txs {
                    w.wake();
                }
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        fn add_sender(&self) {
            lock(&self.inner).senders += 1;
        }

        fn drop_sender(&self) {
            let mut inner = lock(&self.inner);
            inner.senders -= 1;
            if inner.senders == 0 {
                let w = Chan::wake_rx(&mut inner);
                drop(inner);
                if let Some(w) = w {
                    w.wake();
                }
            }
        }

        fn drop_receiver(&self) {
            let mut inner = lock(&self.inner);
            inner.rx_alive = false;
            let txs = std::mem::take(&mut inner.tx_wakers);
            drop(inner);
            for w in txs {
                w.wake();
            }
        }
    }

    /// Creates a bounded channel with `cap` buffered messages.
    pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "mpsc bounded channel requires capacity > 0");
        let chan = Chan::new(Some(cap));
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Creates an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = Chan::new(None);
        (UnboundedSender { chan: chan.clone() }, UnboundedReceiver { chan })
    }

    /// Bounded sender.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends, waiting for capacity.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut slot = Some(value);
            std::future::poll_fn(move |cx| {
                let v = slot.take().expect("polled after completion");
                match self.chan.try_send(v) {
                    Ok(()) => Poll::Ready(Ok(())),
                    Err(TrySendError::Closed(v)) => Poll::Ready(Err(SendError(v))),
                    Err(TrySendError::Full(v)) => {
                        slot = Some(v);
                        lock(&self.chan.inner).tx_wakers.push(cx.waker().clone());
                        // Re-check: the receiver may have drained between
                        // the failed try_send and the waker registration.
                        let v = slot.take().expect("just stored");
                        match self.chan.try_send(v) {
                            Ok(()) => Poll::Ready(Ok(())),
                            Err(TrySendError::Closed(v)) => Poll::Ready(Err(SendError(v))),
                            Err(TrySendError::Full(v)) => {
                                slot = Some(v);
                                Poll::Pending
                            }
                        }
                    }
                }
            })
            .await
        }

        /// Sends without waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.chan.try_send(value)
        }

        /// Is the receive half gone?
        pub fn is_closed(&self) -> bool {
            !lock(&self.chan.inner).rx_alive
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.add_sender();
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.drop_sender();
        }
    }

    /// Bounded receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives the next message; `None` once every sender is gone.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|cx| self.chan.poll_recv(cx)).await
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            self.chan.try_recv()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.drop_receiver();
        }
    }

    /// Unbounded sender.
    pub struct UnboundedSender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> UnboundedSender<T> {
        /// Sends; only fails when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.chan.try_send(value) {
                Ok(()) => Ok(()),
                Err(e) => Err(SendError(e.into_inner())),
            }
        }

        /// Is the receive half gone?
        pub fn is_closed(&self) -> bool {
            !lock(&self.chan.inner).rx_alive
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> UnboundedSender<T> {
            self.chan.add_sender();
            UnboundedSender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            self.chan.drop_sender();
        }
    }

    /// Unbounded receiver.
    pub struct UnboundedReceiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> UnboundedReceiver<T> {
        /// Receives the next message; `None` once every sender is gone.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|cx| self.chan.poll_recv(cx)).await
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            self.chan.try_recv()
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.chan.drop_receiver();
        }
    }
}

/// One-shot value channels.
pub mod oneshot {
    use crate::runtime::lock;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Oneshot error types.
    pub mod error {
        /// The sender was dropped without sending.
        #[derive(Debug, PartialEq, Eq, Clone, Copy)]
        pub struct RecvError(pub(crate) ());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }
        impl std::error::Error for RecvError {}
    }

    pub use error::RecvError;

    struct Slot<T> {
        inner: Mutex<SlotInner<T>>,
    }

    struct SlotInner<T> {
        value: Option<T>,
        tx_alive: bool,
        rx_alive: bool,
        rx_waker: Option<Waker>,
    }

    /// Creates a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let slot = Arc::new(Slot {
            inner: Mutex::new(SlotInner {
                value: None,
                tx_alive: true,
                rx_alive: true,
                rx_waker: None,
            }),
        });
        (Sender { slot: slot.clone() }, Receiver { slot })
    }

    /// The sending half.
    pub struct Sender<T> {
        slot: Arc<Slot<T>>,
    }

    impl<T> Sender<T> {
        /// Delivers `value`; returns it back if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut inner = lock(&self.slot.inner);
            if !inner.rx_alive {
                return Err(value);
            }
            inner.value = Some(value);
            let w = inner.rx_waker.take();
            drop(inner);
            if let Some(w) = w {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.slot.inner);
            inner.tx_alive = false;
            let w = inner.rx_waker.take();
            drop(inner);
            if let Some(w) = w {
                w.wake();
            }
        }
    }

    /// The receiving half: a future of the sent value.
    pub struct Receiver<T> {
        slot: Arc<Slot<T>>,
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = lock(&self.slot.inner);
            if let Some(v) = inner.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !inner.tx_alive {
                return Poll::Ready(Err(RecvError(())));
            }
            inner.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.slot.inner).rx_alive = false;
        }
    }
}
