//! Offline stand-in for `crossbeam`. The workspace declares the
//! dependency but does not use it; scoped threads come from
//! `std::thread::scope` instead.

#![forbid(unsafe_code)]

/// Scoped threads, delegating to `std::thread::scope`.
pub mod thread {
    /// Runs `f` with a `std` scope. Provided for API familiarity.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
