//! Offline stand-in for `criterion`.
//!
//! A real (if compact) wall-clock benchmark harness exposing the
//! criterion API surface this workspace uses: `bench_function`,
//! `benchmark_group` + `Throughput`, `iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros
//! (including the `config = ...` form). Statistics are simple —
//! min/median/max over timed samples — but measured honestly, so
//! before/after comparisons on the same machine are meaningful.
//!
//! Results print to stdout and are appended as JSON lines to
//! `target/bench-results.jsonl` (override with `CBT_BENCH_OUT`) so
//! tooling can consolidate runs.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Wall-clock budget for estimating per-iteration cost before sampling.
const WARMUP: Duration = Duration::from_millis(50);

/// Harness entry point; one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg acts as a substring filter, like
        // `cargo bench -- <filter>`. Dash-args (e.g. cargo's `--bench`)
        // are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 20, filter }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stand-in keys everything off
    /// [`Criterion::sample_size`].
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; warm-up is fixed.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(id, &b.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput basis.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration represents.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.criterion.sample_size };
        f(&mut b);
        report(&full, &b.samples, self.throughput.as_ref());
        self
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(self) {}
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint; the stand-in treats all variants the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` in back-to-back batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration for the batch size.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter) as u64).max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on single timed calls.
        let mut timed: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < WARMUP {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            timed += 1;
            if timed >= 10_000 {
                break;
            }
        }
        let per_iter = spent.as_secs_f64() / timed.max(1) as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000);
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples.push(total.as_nanos() as f64 / batch as f64);
        }
    }

    /// Upstream-compatible alias used by some call sites.
    pub fn iter_with_setup<I, O, S, R>(&mut self, setup: S, routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }
}

/// Prints a summary line and appends a JSON record of the result.
fn report(id: &str, samples: &[f64], throughput: Option<&Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    println!("{id}");
    println!("{:24}time:   [{} {} {}]", "", format_ns(min), format_ns(median), format_ns(max));
    if let Some(t) = throughput {
        let per_sec = |work: u64| work as f64 / (median / 1e9);
        match t {
            Throughput::Bytes(n) => {
                println!("{:24}thrpt:  {:.2} MiB/s", "", per_sec(*n) / (1024.0 * 1024.0));
            }
            Throughput::Elements(n) => {
                println!("{:24}thrpt:  {:.0} elem/s", "", per_sec(*n));
            }
        }
    }
    append_json(id, min, median, max);
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn append_json(id: &str, min: f64, median: f64, max: f64) {
    let path =
        std::env::var("CBT_BENCH_OUT").unwrap_or_else(|_| "target/bench-results.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(
            f,
            "{{\"id\":\"{}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1}}}",
            id.replace('"', "'"),
        );
    }
}

/// Declares a benchmark group function, mirroring upstream's forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_math() {
        // Exercise report() indirectly via a tiny real measurement.
        let mut c = Criterion { sample_size: 3, filter: None };
        let mut ran = 0u64;
        c.bench_function("stub/self_test", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut c = Criterion { sample_size: 2, filter: None };
        c.bench_function("stub/batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
