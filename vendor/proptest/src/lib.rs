//! Offline stand-in for `proptest`.
//!
//! Samples test cases from strategies with a deterministic per-test
//! ChaCha stream (seeded from the test's name), runs `cases`
//! iterations, and panics on the first failure. There is no shrinking:
//! a failing case is reported as-is. The strategy combinator surface
//! mirrors what this workspace uses: ranges, `any`, `Just`, tuples,
//! `prop_map`, `collection::vec`, `option::of`, `prop_oneof!`,
//! `prop_compose!`, and the `proptest!` test harness macro.

#![forbid(unsafe_code)]

pub mod strategy;

use rand::SeedableRng;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// The RNG driving every sample; one independent stream per test.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Builds the deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Runner configuration; only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub max_local_rejects: u32,
    /// Accepted for compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
        }
    }
}

impl ProptestConfig {
    /// Upstream-compatible helper: a config with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`] — the stand-in for upstream's
    /// `SizeRange`. Implementing `From` only for `usize` ranges is what
    /// lets bare literals in `vec(elem, 0..120)` infer as `usize`.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// A `Vec` strategy: length drawn from `size`, elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Builds a strategy producing vectors of `elem` samples whose
    /// length is drawn uniformly from `size` (a plain `0..6` / `1..=8`
    /// range, or an exact `usize`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy yielding `None` 1 time in 4, `Some` otherwise
    /// (mirrors upstream's default weighting).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Lifts a strategy into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// `proptest::num` is spelled via plain range strategies here; this
/// module exists so `proptest::num::...` paths don't break callers.
pub mod num {}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Asserts a condition inside a property (panics; no shrink phase).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$attr:meta])*
        $vis:vis fn $name:ident ($($arg:tt)*)
        ($($field:ident in $strat:expr),* $(,)?)
        -> $ret:ty
        $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name($($arg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($field,)*)| $body,
            )
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` running
/// `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($field:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let strat = ($($crate::strategy::Strategy::boxed($strat),)*);
            for case in 0..config.cases {
                let ($($field,)*) = {
                    let ($(ref $field,)*) = strat;
                    ($($crate::strategy::Strategy::sample($field, &mut rng),)*)
                };
                let guard = $crate::CaseReporter { name: stringify!($name), case };
                $body
                std::mem::forget(guard);
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Prints which sampled case failed when a property body panics.
#[doc(hidden)]
pub struct CaseReporter {
    pub name: &'static str,
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        // Only reached via unwinding: passing cases are forgotten.
        eprintln!("proptest stand-in: property `{}` failed at case #{}", self.name, self.case);
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        fn ranges_stay_in_bounds(x in 3u8..=9, y in 10u64..20) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((10..20).contains(&y));
        }

        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        fn mapped_values_hold(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        fn oneof_covers_variants(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        fn options_appear(o in crate::option::of(0u8..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::{any, Strategy};
        let s = (0u32..1_000_000, any::<bool>());
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) { (a, b) }
    }

    proptest! {
        fn composed_strategies_work(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
