//! Strategy trait and combinators for the proptest stand-in.

use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies of one
    /// value type can live in one collection (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice over type-erased alternatives (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// A strategy producing clones of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `any::<T>()` whole-domain strategy.
pub struct Any<T>(PhantomData<T>);

/// Samples uniformly from `T`'s whole domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_via_gen {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
any_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::test_rng("strategy-tests");
        let s = (0u8..4, 10u64..=12, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.sample(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = crate::test_rng("union-tests");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
