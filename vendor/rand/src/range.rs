//! Uniform range sampling for `Rng::gen_range`.
//!
//! `SampleRange` is implemented generically over any `SampleUniform`
//! type (as upstream does) so that integer-literal ranges like
//! `rng.gen_range(0..3)` infer their type from the surrounding
//! expression instead of defaulting to `i32`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A primitive that can be drawn uniformly from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// A range usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Widening-multiply reduction: deterministic, near-uniform.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128) - (low as u128) + 1;
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_uint_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_int_uniform!(i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty, $bits:expr, $shift:expr);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> $shift) as $t / (1u64 << ($bits)) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let unit =
                    (rng.next_u64() >> $shift) as $t / ((1u64 << ($bits)) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_float_uniform!(f64, 53, 11; f32, 24, 40);
