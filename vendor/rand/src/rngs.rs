//! Minimal named generators (none are used by this workspace directly,
//! but `rand::rngs` is a conventional import path worth keeping real).

use crate::{RngCore, SeedableRng};

/// A small, fast xoshiro256++-style generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // Avoid the all-zero state.
        if s == [0; 4] {
            s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
        }
        SmallRng { s }
    }
}
