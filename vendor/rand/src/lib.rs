//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements the subset this workspace uses: [`RngCore`],
//! [`SeedableRng`] (with the splitmix64-based `seed_from_u64`),
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), the [`Standard`]
//! distribution for primitive types, and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Sampling algorithms are deterministic given
//! the generator stream, which is all the simulator's reproducibility
//! guarantees require.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (matching the
    /// upstream algorithm) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        // splitmix64, as used by rand 0.8's seed_from_u64.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod range;
pub use range::SampleRange;

/// Convenience extension over [`RngCore`]: typed sampling.
pub trait Rng: RngCore {
    /// Samples a value of a primitive type via [`Standard`].
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The prelude: what `use rand::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::{IteratorRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so high bits move too (gen_range uses them).
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..17);
            assert!(x < 17);
            let y: u8 = r.gen_range(0..8u8);
            assert!(y < 8);
            let z: u8 = r.gen_range(1u8..=6);
            assert!((1..=6).contains(&z));
            let f: f64 = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
