//! Sequence sampling: `SliceRandom` and `IteratorRandom`.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// One uniformly chosen element by mutable reference.
    fn choose_mut<R: RngCore>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i: usize = rng.gen_range(0..self.len());
            self.get(i)
        }
    }

    fn choose_mut<R: RngCore>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i: usize = rng.gen_range(0..self.len());
            self.get_mut(i)
        }
    }
}

/// Random operations on iterators.
pub trait IteratorRandom: Iterator + Sized {
    /// Uniformly chosen element via reservoir sampling.
    fn choose<R: RngCore>(self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = None;
        let mut seen: usize = 0;
        for item in self {
            seen += 1;
            if rng.gen_range(0..seen) == 0 {
                chosen = Some(item);
            }
        }
        let _ = seen;
        chosen
    }
}

impl<I: Iterator> IteratorRandom for I {}
