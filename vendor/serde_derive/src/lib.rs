//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no syn/quote, which cannot be fetched offline).
//!
//! Supports what this workspace uses:
//! * structs with named fields (no generics);
//! * enums whose variants are all unit variants (serialized as their
//!   name string);
//! * field attributes `#[serde(default)]` and
//!   `#[serde(rename = "...")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    json_name: String,
    default: bool,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Parses the item the derive is attached to.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional (crate)/(super) group after pub.
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(t) => return Err(format!("unexpected token before item keyword: {t}")),
            None => return Err("ran out of tokens before struct/enum".into()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    // Reject generics: the workspace doesn't derive on generic types.
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive stand-in does not support generics on `{name}`"));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => return Err(format!("no braced body found for `{name}`")),
        }
    };
    if kind == "struct" {
        Ok(Shape::Struct { name, fields: parse_named_fields(body)? })
    } else {
        Ok(Shape::UnitEnum { name, variants: parse_unit_variants(body)? })
    }
}

/// Splits a brace-group token stream into top-level comma chunks.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().unwrap().push(t),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Reads `#[serde(...)]` options from one attribute group body.
fn read_serde_attr(group: &proc_macro::Group, field: &mut Field) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // Expect: serde ( ... )
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &inner[..] else { return };
    if id.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(opt) if opt.to_string() == "default" => {
                field.default = true;
                j += 1;
            }
            TokenTree::Ident(opt) if opt.to_string() == "rename" => {
                // rename = "literal"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (args.get(j + 1), args.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        field.json_name = s.trim_matches('"').to_string();
                    }
                }
                j += 3;
            }
            _ => j += 1,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_commas(body) {
        let mut field: Option<Field> = None;
        let mut k = 0;
        while k < chunk.len() {
            match &chunk[k] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    // Attribute: may carry serde options; stash until
                    // the name is known by applying to a placeholder.
                    if field.is_none() {
                        field = Some(Field {
                            name: String::new(),
                            json_name: String::new(),
                            default: false,
                        });
                    }
                    if let Some(TokenTree::Group(g)) = chunk.get(k + 1) {
                        read_serde_attr(g, field.as_mut().unwrap());
                    }
                    k += 2;
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    k += 1;
                    if matches!(chunk.get(k), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        k += 1;
                    }
                }
                TokenTree::Ident(id) => {
                    // Field name, then a ':' and the type (ignored).
                    let f = field.get_or_insert(Field {
                        name: String::new(),
                        json_name: String::new(),
                        default: false,
                    });
                    f.name = id.to_string();
                    if f.json_name.is_empty() {
                        f.json_name = f.name.clone();
                    }
                    break;
                }
                other => return Err(format!("unexpected token in field: {other}")),
            }
        }
        match field {
            Some(f) if !f.name.is_empty() => fields.push(f),
            _ => return Err("could not find field name".into()),
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_commas(body) {
        let mut k = 0;
        let mut name = None;
        while k < chunk.len() {
            match &chunk[k] {
                TokenTree::Punct(p) if p.as_char() == '#' => k += 2,
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    k += 1;
                }
                TokenTree::Group(_) => {
                    return Err("derive stand-in supports unit enum variants only".into())
                }
                TokenTree::Punct(p) if p.as_char() == '=' => break, // discriminant
                other => return Err(format!("unexpected token in variant: {other}")),
            }
        }
        match name {
            Some(n) => variants.push(n),
            None => return Err("could not find variant name".into()),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "m.insert({json:?}.to_string(), serde::Serialize::to_json_value(&self.{field}));\n",
                    json = f.json_name,
                    field = f.name,
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> serde::json::Value {{\n\
                         let mut m = serde::json::Map::new();\n\
                         {inserts}\
                         serde::json::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => {v:?},\n")).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> serde::json::Value {{\n\
                         serde::json::Value::String(match self {{\n{arms}}}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let missing = if f.default {
                    "std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(serde::json::DeError::new(\
                             format!(\"missing field `{}`\")))",
                        f.json_name
                    )
                };
                inits.push_str(&format!(
                    "{field}: match obj.get({json:?}) {{\n\
                         Some(x) => serde::Deserialize::from_json_value(x)?,\n\
                         None => {missing},\n\
                     }},\n",
                    field = f.name,
                    json = f.json_name,
                ));
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| serde::json::DeError::expected(\"object\", v))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{v:?} => Ok({name}::{v}),\n")).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::DeError> {{\n\
                         let s = v.as_str().ok_or_else(|| serde::json::DeError::expected(\"string\", v))?;\n\
                         match s {{\n{arms}\
                             other => Err(serde::json::DeError::new(format!(\"unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
