//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with
//! the poison-free API, implemented over `std::sync`. A poisoned std
//! lock (a panic while held) propagates the panic on next acquisition,
//! which matches parking_lot's practical behaviour in this workspace
//! (nothing recovers from poisoning).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
