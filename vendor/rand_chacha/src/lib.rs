//! Offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a real ChaCha stream cipher keystream reduced to 8
//! rounds — a deterministic, statistically strong generator. The
//! keystream does not bit-match upstream `rand_chacha` (different
//! nonce/counter conventions are possible), which is fine here: the
//! workspace relies on *self*-reproducibility from a seed, not on
//! cross-crate bit equality.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Re-export path compatibility: `rand_chacha::rand_core::SeedableRng`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        /// ChaCha keystream generator.
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means "refill".
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name { key, counter: 0, buf: [0; 16], idx: 16 }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [
        // "expand 32-byte k"
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should look unrelated");
    }

    #[test]
    fn chacha20_matches_rfc7539_first_block_structure() {
        // Sanity: block function changes every word.
        let block = chacha_block(&[0; 8], 0, 20);
        assert!(block.iter().filter(|&&w| w == 0).count() < 4);
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "spread across the interval");
    }
}
