//! Offline stand-in for `serde_json`.
//!
//! The value model lives in the `serde` stand-in (`serde::json`); this
//! crate re-exports it and provides the familiar entry points:
//! [`json!`], [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`].

#![forbid(unsafe_code)]

pub use serde::json::{DeError as Error, Map, Number, Value};

/// `serde_json::value` module mirror.
pub mod value {
    pub use serde::json::{Map, Number, Value};
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string())
}

/// Serializes to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Serializes to a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let v = serde::json::parse(text)?;
    T::from_json_value(&v)
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Builds a [`Value`] from JSON-ish syntax, like upstream's `json!`.
///
/// Supports literals, `null`, arrays, objects with string-literal or
/// parenthesized-expression keys, and arbitrary expressions in value
/// position (converted via `Into<Value>` or `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => {
        $crate::Value::Array($crate::json_internal_array!([] $($elems)*))
    };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal_object!(map () ($($entries)*));
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

/// Internal: accumulates array elements. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal_array {
    // Finished.
    ([ $($done:expr,)* ]) => { vec![ $($done,)* ] };
    // Trailing comma after last element.
    ([ $($done:expr,)* ] , ) => { vec![ $($done,)* ] };
    // Next element is null / array / object / expression; munch until comma.
    ([ $($done:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::to_value(&$next).unwrap(), ] $($($rest)*)?)
    };
}

/// Internal: accumulates object entries. Not public API.
///
/// Shape: `json_internal_object!(map (partial-key-tokens) (remaining))`.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal_object {
    // Done.
    ($map:ident () ()) => {};
    // Trailing comma.
    ($map:ident () (,)) => {};
    // Key complete, value is null.
    ($map:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $map.insert(($($key)+).to_string(), $crate::Value::Null);
        $crate::json_internal_object!($map () ($($($rest)*)?));
    };
    // Key complete, value is an array.
    ($map:ident ($($key:tt)+) (: [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $map.insert(($($key)+).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal_object!($map () ($($($rest)*)?));
    };
    // Key complete, value is an object.
    ($map:ident ($($key:tt)+) (: { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $map.insert(($($key)+).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal_object!($map () ($($($rest)*)?));
    };
    // Key complete, value is an expression.
    ($map:ident ($($key:tt)+) (: $value:expr $(, $($rest:tt)*)?)) => {
        $map.insert(($($key)+).to_string(), $crate::to_value(&$value).unwrap());
        $crate::json_internal_object!($map () ($($($rest)*)?));
    };
    // Munch one more token into the key.
    ($map:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal_object!($map ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "cbt",
            "count": 3,
            "ratio": 1.5,
            "on": true,
            "none": null,
            "tags": ["a", "b"],
            "nested": { "deep": [1, 2, 3] },
        });
        assert_eq!(v["name"].as_str(), Some("cbt"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(1.5));
        assert_eq!(v["on"].as_bool(), Some(true));
        assert!(v["none"].is_null());
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["deep"][2].as_u64(), Some(3));
    }

    #[test]
    fn json_macro_expressions() {
        let n = 41 + 1;
        let s = String::from("dyn");
        let list: Vec<u32> = vec![7, 8];
        let v = json!({ "n": n, "s": s, "list": list, "sum": 1 + 2 });
        assert_eq!(v["n"].as_u64(), Some(42));
        assert_eq!(v["s"].as_str(), Some("dyn"));
        assert_eq!(v["list"][1].as_u64(), Some(8));
        assert_eq!(v["sum"].as_u64(), Some(3));
    }

    #[test]
    fn round_trip_text() {
        let v = json!({ "a": [1, 2], "b": { "c": "x" } });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn scalar_json() {
        assert_eq!(json!(5).as_u64(), Some(5));
        assert_eq!(json!("s").as_str(), Some("s"));
        assert_eq!(json!([1, [2]])[1][0].as_u64(), Some(2));
        assert_eq!(json!(null), Value::Null);
    }
}
