//! The JSON value model shared by the `serde` and `serde_json`
//! stand-ins: [`Value`], an insertion-ordered [`Map`], a [`Number`]
//! that keeps integer/float identity, a recursive-descent parser and a
//! deterministic printer.

use std::fmt;

/// A JSON number: integer when possible, float otherwise.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer (covers every integer JSON this workspace emits).
    Int(i128),
    /// A double.
    Float(f64),
}

impl Number {
    /// From any integer.
    pub fn from_i128(n: i128) -> Self {
        Number::Int(n)
    }

    /// From a double. NaN/infinity degrade to null-ish 0 on print, as
    /// upstream forbids them; keep the value so `as_f64` round-trips.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// As f64, always possible.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }

    /// As u64 when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::Int(i) => u64::try_from(*i).ok(),
            Number::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// As i64 when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(i) => i64::try_from(*i).ok(),
            Number::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{:.1}", x)
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string→value map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts, replacing any existing entry with the same key (keeps
    /// the original position, like upstream's preserve-order map).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Whether a key exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::vec::IntoIter<(&'a String, &'a Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v)).collect::<Vec<_>>().into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As f64 (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As u64 (integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As i64 (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field or array-index lookup that never panics.
    pub fn get(&self, index: impl ValueIndex) -> Option<&Value> {
        index.index_into(self)
    }

    /// Renders compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders pretty JSON (2-space indent, like upstream).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().is_some_and(|n| n == *other as i64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64().is_some_and(|n| n == *other)
    }
}
impl PartialEq<Value> for u64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64().is_some_and(|n| n == *other)
    }
}
impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool().is_some_and(|b| b == *other)
    }
}
impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str().is_some_and(|s| s == other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str().is_some_and(|s| s == *other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str().is_some_and(|s| s == other)
    }
}
impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Types usable as `value[index]`.
pub trait ValueIndex {
    /// Non-panicking lookup.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}
impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}
impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// From impls used by the json! macro.
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::from_f64(f))
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::from_f64(f as f64))
    }
}
macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::from_i128(n as i128))
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

// ---------------------------------------------------------------- --
// Printing.

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- --
// Parsing.

/// A deserialization / parse error with position info when parsing.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        let found = match found {
            Value::Null => "null".to_string(),
            Value::Bool(_) => "a boolean".to_string(),
            Value::Number(n) => format!("number {n}"),
            Value::String(s) => format!("string {s:?}"),
            Value::Array(_) => "an array".to_string(),
            Value::Object(_) => "an object".to_string(),
        };
        DeError::new(format!("expected {what}, found {found}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs unsupported (unused here).
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(|i| Value::Number(Number::Int(i)))
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["a"][3].is_null());
        assert_eq!(v["b"]["c"].as_i64(), Some(-3));
        let printed = v.to_json_string();
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn map_preserves_insertion_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<_> = v.as_object().unwrap().iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn escapes_in_strings() {
        let v = parse(r#""a\"b\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA"));
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }
}
