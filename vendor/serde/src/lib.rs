//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy data model, this
//! stand-in serializes through a concrete JSON value tree
//! ([`json::Value`]) — a deliberate simplification that supports
//! everything this workspace does with serde (derive on plain structs,
//! `serde_json::json!`, `to_string_pretty`, `from_str`). The
//! `serde_json` stand-in crate re-exports this model.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{DeError, Map, Number, Value};

/// A type that can render itself as a JSON value tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_json_value(&self) -> Value;
}

/// A type constructible from a JSON value tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value, or explains why it cannot.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- --
// Serialize impls for primitives and std containers.

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i128(*self as i128))
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value(), self.2.to_json_value()])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so output is deterministic run to run.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_json_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------- --
// Deserialize impls.

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::expected("f32", v))
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        arr.iter().map(T::from_json_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("2-element array", v))?;
        if arr.len() != 2 {
            return Err(DeError::expected("2-element array", v));
        }
        Ok((A::from_json_value(&arr[0])?, B::from_json_value(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("3-element array", v))?;
        if arr.len() != 3 {
            return Err(DeError::expected("3-element array", v));
        }
        Ok((
            A::from_json_value(&arr[0])?,
            B::from_json_value(&arr[1])?,
            C::from_json_value(&arr[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
    }
}
