//! Offline stand-in for the `bytes` crate, providing the subset this
//! workspace uses: [`Bytes`], a cheaply cloneable, reference-counted,
//! contiguous slice of memory.
//!
//! Cloning a `Bytes` bumps an `Arc` refcount; it never copies the
//! payload. [`Bytes::slice`] produces zero-copy views into the same
//! allocation. This is exactly the property the simulator's LAN
//! fan-out relies on: one frame, N receivers, one allocation.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by `Arc<Vec<u8>>` so `From<Vec<u8>>` takes ownership of the
/// buffer without copying it — the same O(1) promotion upstream `bytes`
/// performs — which matters for the simulator's send path where every
/// frame is first assembled as a `Vec<u8>`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates `Bytes` from a static slice (copies, unlike upstream —
    /// the distinction is irrelevant for this workspace).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds: {begin}..{end} of {len}");
        Bytes { data: Arc::clone(&self.data), start: self.start + begin, end: self.start + end }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// True when `self` and `other` are views into the same allocation
    /// (refcount sharing — the zero-copy witness used by tests). Not
    /// part of the upstream API, but invaluable for asserting that
    /// fan-out did not copy.
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Self::copy_from_slice(&v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert!(a.shares_allocation_with(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert!(a.shares_allocation_with(&s));
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
    }

    #[test]
    fn equality_with_plain_slices() {
        let a = Bytes::from(vec![9u8, 8]);
        assert_eq!(a, vec![9u8, 8]);
        assert_eq!(a, &[9u8, 8][..]);
        assert!(a == [9u8, 8][..]);
    }
}
