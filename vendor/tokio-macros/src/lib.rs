//! Offline stand-in for `tokio-macros`.
//!
//! Provides the two attribute macros this workspace uses —
//! `#[tokio::main]` and `#[tokio::test]` (including
//! `#[tokio::test(start_paused = true)]`) — by rewriting the annotated
//! `async fn` into a plain `fn` that builds a vendored-tokio runtime
//! and `block_on`s the body. Like the vendored `serde_derive`, this is
//! written directly against `proc_macro::TokenStream` (no `syn`, no
//! `quote`): the attribute arguments are scanned as text and the item
//! is rewritten token-by-token, which is enough for the argument-less
//! `async fn` signatures the runtime entry points actually use.

use proc_macro::{TokenStream, TokenTree};

/// Options recognised in the attribute argument list.
struct Opts {
    /// `flavor = "multi_thread"` (anything else → current thread).
    multi_thread: bool,
    /// `worker_threads = N`.
    workers: Option<usize>,
    /// `start_paused = true` — virtual time from the first poll.
    start_paused: bool,
}

fn parse_opts(attr: TokenStream, default_multi: bool) -> Opts {
    let text = attr.to_string();
    let mut opts = Opts { multi_thread: default_multi, workers: None, start_paused: false };
    for clause in text.split(',') {
        let mut kv = clause.splitn(2, '=');
        let key = kv.next().unwrap_or("").trim();
        let val = kv.next().unwrap_or("").trim().trim_matches('"');
        match key {
            "flavor" => opts.multi_thread = val == "multi_thread",
            "worker_threads" => opts.workers = val.parse().ok(),
            "start_paused" => opts.start_paused = val == "true",
            _ => {}
        }
    }
    // start_paused implies a current-thread scheduler (as in real tokio).
    if opts.start_paused {
        opts.multi_thread = false;
    }
    opts
}

/// Rewrites `async fn name(..) { body }` (with any leading attributes)
/// into a synchronous fn that runs `body` on a fresh runtime.
fn rewrite(item: TokenStream, opts: &Opts, is_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Locate the `async` keyword introducing the fn and the trailing
    // brace group that is its body.
    let async_at = tokens.iter().enumerate().position(|(i, t)| {
        matches!(t, TokenTree::Ident(id) if id.to_string() == "async")
            && matches!(tokens.get(i + 1), Some(TokenTree::Ident(id2)) if id2.to_string() == "fn")
    });
    let Some(async_at) = async_at else {
        return compile_error("#[tokio::main]/#[tokio::test] requires an `async fn`");
    };
    let body_at = tokens.len() - 1;
    let is_body = matches!(
        tokens.get(body_at),
        Some(TokenTree::Group(g)) if g.delimiter() == proc_macro::Delimiter::Brace
    );
    if !is_body {
        return compile_error("expected a braced fn body");
    }

    let mut out = String::new();
    if is_test {
        out.push_str("#[::core::prelude::v1::test] ");
    }
    for (i, t) in tokens.iter().enumerate() {
        if i == async_at {
            continue; // drop `async`
        }
        if i == body_at {
            break;
        }
        out.push_str(&t.to_string());
        out.push(' ');
    }
    let body = tokens[body_at].to_string();
    let builder = if opts.multi_thread {
        "::tokio::runtime::Builder::new_multi_thread()"
    } else {
        "::tokio::runtime::Builder::new_current_thread()"
    };
    out.push_str("{ let __tokio_body = async move ");
    out.push_str(&body);
    out.push_str("; let mut __tokio_builder = ");
    out.push_str(builder);
    out.push(';');
    out.push_str("__tokio_builder.enable_all();");
    if opts.start_paused {
        out.push_str("__tokio_builder.start_paused(true);");
    }
    if let Some(n) = opts.workers {
        out.push_str(&format!("__tokio_builder.worker_threads({n});"));
    }
    out.push_str(
        "__tokio_builder.build().expect(\"failed to build the vendored tokio runtime\")\
         .block_on(__tokio_body) }",
    );
    out.parse().expect("generated runtime entry point must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// `#[tokio::main]` — multi-thread flavor by default, like real tokio.
#[proc_macro_attribute]
pub fn main(attr: TokenStream, item: TokenStream) -> TokenStream {
    let opts = parse_opts(attr, true);
    rewrite(item, &opts, false)
}

/// `#[tokio::test]` — current-thread flavor, `start_paused` supported.
#[proc_macro_attribute]
pub fn test(attr: TokenStream, item: TokenStream) -> TokenStream {
    let opts = parse_opts(attr, false);
    rewrite(item, &opts, true)
}
