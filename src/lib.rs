//! Root reproduction package: hosts the workspace-level examples and
//! integration tests. All functionality lives in the `crates/` members.
